//! Closed-loop hierarchy engine: a policy-driven disk cache in the data
//! path of the device model.
//!
//! The open-loop halves of this workspace each tell half the story:
//! [`crate::MssSimulator`] models MSCP dispatch, mounts, seeks, and
//! mover contention but never consults the disk cache, while
//! `fmig_migrate::eval` scores migration policies by miss ratio plus a
//! constant per-miss charge. This module closes the loop — the paper's
//! Figure 3 / Table 3 claim is that policy choice shows up as
//! *user-visible latency*, so the cost of a miss must emerge from the
//! same device queues the recall traffic loads:
//!
//! * a [`DiskCache`] driven by any [`MigrationPolicy`] classifies every
//!   reference — hits are served at disk latency through the
//!   spindle/mover path;
//! * misses enqueue a **tape recall** through the existing drive /
//!   robot-or-operator / seek / tape-mover model, and the requester's
//!   first byte is the recall's first byte (cut-through staging);
//! * references to a file whose recall is still outstanding **coalesce**
//!   onto it (*delayed hits*, after the Atre et al. "Caching with
//!   Delayed Hits" observation): exactly one recall is issued and no
//!   coalesced request waits longer than the fetch it joined;
//! * eager write-behind flushes, eviction stalls, and watermark-purge
//!   flushes become **tape writes** that compete with recalls for the
//!   same drives, mounters, and movers — write-back contention is
//!   measured, not assumed.
//!
//! Cache decisions are made at reference arrival, in trace order, with
//! the same [`DiskCache`] calls open-loop replay makes — so a
//! closed-loop run reproduces open-loop miss ratios *exactly* while
//! additionally reporting device-model-derived wait distributions per
//! policy.
//!
//! # Timing model
//!
//! Foreground references pay a lognormal MSCP dispatch overhead, then:
//! hits and writes queue on their file's spindle and a channel mover
//! (plus the disk seek); misses dispatch a recall into the tape path.
//! Delayed hits skip dispatch — they join an already-dispatched recall
//! whose catalog work is done — and reach their first byte at
//! `max(arrival, recall first byte)`, which bounds their wait by the
//! wait of the miss that issued the fetch. In lazy write-back mode a
//! reference whose admission forced a dirty **stall** eviction cannot
//! start its disk service until that flush lands on tape.
//!
//! # Determinism
//!
//! One thread, one seeded RNG, an insertion-stable event queue, and the
//! cache's total eviction order: equal seeds replay identically, which
//! is what lets sweep reports stay byte-identical at any worker count.

use fmig_migrate::cache::{CacheConfig, CacheOp, CacheStats, DiskCache, ReadResult};
use fmig_migrate::eval::{
    DegradedOutcome, EvalConfig, LatencyOutcome, PolicyOutcome, PreparedRef, PreparedTrace,
};
use fmig_migrate::feedback::LatencyFeedback;
use fmig_migrate::policy::MigrationPolicy;
use fmig_trace::{DeviceClass, FileId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::event::{EventQueue, SimMs, MS};
use crate::fault::{FaultPlan, FaultSchedule, FaultTarget};
use crate::metrics::{LatencyHistogram, Utilisation};
use crate::pool::Pool;
use crate::sim::standard_normal;

pub use crate::fault::FAULT_HORIZON_SLACK_MS;

/// How one reference reached its first byte in the closed loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServedBy {
    /// Read hit on fully resident data, served at disk latency.
    DiskHit,
    /// Read coalesced onto an outstanding tape recall (delayed hit).
    DelayedHit,
    /// Read miss served by its own tape recall.
    Recall,
    /// Write absorbed by the staging disk.
    DiskWrite,
}

/// One reference's closed-loop outcome, handed to the streaming sink in
/// arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefOutcome {
    /// Index of the reference in the input slice.
    pub index: usize,
    /// Dense file id (see [`fmig_trace::FileTable`]).
    pub id: FileId,
    /// True for writes.
    pub write: bool,
    /// How the reference was served.
    pub served: ServedBy,
    /// Device that served it: disk for hits and writes, the recall's
    /// tape tier for misses and delayed hits.
    pub device: DeviceClass,
    /// Seconds from arrival to first byte.
    pub wait_s: f64,
}

/// Aggregate metrics of one closed-loop run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyMetrics {
    /// References simulated.
    pub requests: u64,
    /// Reads that coalesced onto an outstanding recall instead of
    /// issuing their own fetch (cache-level delayed hits plus re-misses
    /// of a file already being recalled).
    pub delayed_hits: u64,
    /// Tape recalls actually issued.
    pub recalls: u64,
    /// Tape flush jobs issued (write-behind, stall, and purge flushes).
    pub flush_jobs: u64,
    /// Bytes those flush jobs carried to tape.
    pub flush_bytes: u64,
    /// First-byte waits of disk-served read hits, seconds.
    pub hit_wait: LatencyHistogram,
    /// First-byte waits of coalesced (delayed-hit) reads, seconds.
    pub delayed_hit_wait: LatencyHistogram,
    /// First-byte waits of read misses (tape recalls), seconds.
    pub miss_wait: LatencyHistogram,
    /// First-byte waits of writes, seconds.
    pub write_wait: LatencyHistogram,
    /// Time flush jobs spent queued for a tape drive, seconds — the
    /// write-back contention reads feel.
    pub flush_queue_wait: LatencyHistogram,
    /// Mean busy units per resource over the run.
    pub utilisation: Utilisation,
    /// The cache's own counters. For latency-blind policies these are
    /// identical to what open-loop replay of the same trace under the
    /// same policy produces — with or without a fault plan, since
    /// faults only move time, never cache decisions. Latency-aware
    /// policies ([`MigrationPolicy::latency_aware`]) rank victims off
    /// the live feedback below instead of the open-loop constant, so
    /// their decisions (and counters) may deliberately diverge.
    pub cache: CacheStats,
    /// The miss-latency feedback channel as it stood at the end of the
    /// run: an EWMA of measured recall waits per (tape tier,
    /// size-class), fed by every resolved recall and published into the
    /// cache before each reference (see `fmig_migrate::feedback`).
    pub latency_feedback: LatencyFeedback,
    /// Degraded-mode attribution when the run carried an active
    /// [`FaultPlan`]; `None` on fault-free runs, keeping them
    /// bit-identical to the pre-fault engine.
    pub fault: Option<DegradedOutcome>,
    /// The cache's own count of failed recall attempts
    /// (`DiskCache::fetch_retries`). Equal to
    /// [`DegradedOutcome::read_retries`] here — the engine fails a
    /// fetch exactly when a tape read errors — but surfaced separately
    /// because the live daemon shares this counter: its retries show up
    /// through the identical cache-level channel, not a simulator-only
    /// field.
    pub cache_fetch_retries: u64,
}

impl HierarchyMetrics {
    fn new() -> Self {
        HierarchyMetrics {
            requests: 0,
            delayed_hits: 0,
            recalls: 0,
            flush_jobs: 0,
            flush_bytes: 0,
            hit_wait: LatencyHistogram::new(),
            delayed_hit_wait: LatencyHistogram::new(),
            miss_wait: LatencyHistogram::new(),
            write_wait: LatencyHistogram::new(),
            flush_queue_wait: LatencyHistogram::new(),
            utilisation: Utilisation::default(),
            cache: CacheStats::default(),
            latency_feedback: LatencyFeedback::new(),
            fault: None,
            cache_fetch_retries: 0,
        }
    }

    /// All read waits combined (hits, delayed hits, and misses).
    pub fn read_wait(&self) -> LatencyHistogram {
        let mut h = self.hit_wait.clone();
        h.merge(&self.delayed_hit_wait);
        h.merge(&self.miss_wait);
        h
    }

    /// The latency-true summary a [`PolicyOutcome`] carries.
    pub fn latency_outcome(&self) -> LatencyOutcome {
        let read = self.read_wait();
        LatencyOutcome {
            mean_read_wait_s: read.mean(),
            p99_read_wait_s: read.quantile(0.99),
            mean_miss_wait_s: self.miss_wait.mean(),
            mean_delayed_wait_s: self.delayed_hit_wait.mean(),
            delayed_hits: self.delayed_hits,
            recalls: self.recalls,
            flush_bytes: self.flush_bytes,
            mean_flush_queue_s: self.flush_queue_wait.mean(),
            degraded: self.fault,
        }
    }
}

/// The closed-loop hierarchy simulator: device model from a
/// [`SimConfig`], cache geometry and policy supplied per run.
#[derive(Debug, Clone)]
pub struct HierarchySimulator {
    config: SimConfig,
}

impl HierarchySimulator {
    /// Creates a simulator over the given hardware configuration.
    pub fn new(config: SimConfig) -> Self {
        HierarchySimulator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the closed loop over a prepared reference sequence.
    ///
    /// # Panics
    ///
    /// Panics if references are not sorted by time.
    pub fn run(
        &self,
        cache: CacheConfig,
        policy: &dyn MigrationPolicy,
        refs: &[PreparedRef],
    ) -> HierarchyMetrics {
        self.run_streaming(cache, policy, refs, |_| {})
    }

    /// Runs the closed loop, handing every reference's [`RefOutcome`] to
    /// `sink` in arrival order as soon as its first byte is reached.
    ///
    /// # Panics
    ///
    /// Panics if references are not sorted by time.
    pub fn run_streaming(
        &self,
        cache: CacheConfig,
        policy: &dyn MigrationPolicy,
        refs: &[PreparedRef],
        sink: impl FnMut(RefOutcome),
    ) -> HierarchyMetrics {
        self.run_streaming_with_faults(cache, policy, refs, &FaultPlan::none(), sink)
    }

    /// Runs the closed loop under a degraded-mode [`FaultPlan`]: drive
    /// and mounter outages park pool units, recalls suffer bounded-retry
    /// media read errors (waiters stay coalesced across retries), and
    /// slow-drive windows stretch tape transfers. The plan's concrete
    /// schedule derives from [`SimConfig::seed`], so equal seeds replay
    /// byte-identically; an empty plan is bit-identical to [`Self::run`].
    ///
    /// # Panics
    ///
    /// Panics if references are not sorted by time.
    pub fn run_with_faults(
        &self,
        cache: CacheConfig,
        policy: &dyn MigrationPolicy,
        refs: &[PreparedRef],
        plan: &FaultPlan,
    ) -> HierarchyMetrics {
        self.run_streaming_with_faults(cache, policy, refs, plan, |_| {})
    }

    /// Streaming variant of [`Self::run_with_faults`].
    ///
    /// # Panics
    ///
    /// Panics if references are not sorted by time.
    pub fn run_streaming_with_faults(
        &self,
        cache: CacheConfig,
        policy: &dyn MigrationPolicy,
        refs: &[PreparedRef],
        plan: &FaultPlan,
        sink: impl FnMut(RefOutcome),
    ) -> HierarchyMetrics {
        let start_ms = refs.first().map_or(0, |r| r.time * MS);
        let end_ms = refs.last().map_or(0, |r| r.time * MS) + FAULT_HORIZON_SLACK_MS;
        let schedule = FaultSchedule::materialize(plan, self.config.seed, start_ms, end_ms);
        Engine::new(&self.config, cache, policy, schedule).run(refs, sink)
    }

    /// Evaluates one policy latency-true: the closed-loop run supplies
    /// both the cache counters (identical to open-loop replay) and the
    /// measured wait distributions, and the person-minutes cost is
    /// derived from the measured mean miss wait instead of
    /// [`EvalConfig::wait_s_per_miss`].
    pub fn evaluate(
        &self,
        prepared: &PreparedTrace,
        policy: &dyn MigrationPolicy,
        eval: &EvalConfig,
    ) -> PolicyOutcome {
        self.evaluate_with_faults(prepared, policy, eval, &FaultPlan::none())
    }

    /// [`Self::evaluate`] under a [`FaultPlan`]: identical cache
    /// counters and miss ratios (faults move time, not decisions), wait
    /// distributions and person-minutes measured in the degraded world,
    /// and [`LatencyOutcome::degraded`] attributing the damage.
    pub fn evaluate_with_faults(
        &self,
        prepared: &PreparedTrace,
        policy: &dyn MigrationPolicy,
        eval: &EvalConfig,
        plan: &FaultPlan,
    ) -> PolicyOutcome {
        let metrics = self.run_with_faults(eval.cache, policy, prepared.refs(), plan);
        let stats = metrics.cache;
        let mut outcome = PolicyOutcome {
            name: policy.name(),
            stats,
            miss_ratio: stats.miss_ratio(),
            byte_miss_ratio: stats.byte_miss_ratio(),
            person_minutes_per_day: stats
                .person_minutes_per_day(eval.wait_s_per_miss, eval.trace_days),
            latency: None,
        };
        outcome.attach_latency(metrics.latency_outcome(), eval);
        outcome
    }
}

/// Events of the closed-loop engine. `usize` payloads are indices into
/// the engine's job table except for `Dispatch`, which names a
/// reference, and `OutageStart`, which names a fault-schedule window.
#[derive(Debug, Clone, Copy)]
enum HEv {
    /// MSCP overhead elapsed for a foreground reference.
    Dispatch(usize),
    /// A flush job's write-behind batching delay elapsed; join the tape
    /// drive queue.
    FlushReady(usize),
    /// Media mount finished.
    MountDone(usize),
    /// Tape positioned at the data (or at start-of-tape for appends).
    SeekDone(usize),
    /// Data transfer finished.
    TransferDone(usize),
    /// Tape drive finished unloading.
    DriveFree(usize),
    /// A fault-schedule outage window opens: park one unit of its pool.
    OutageStart(usize),
    /// An outage hold's repair finished: return the parked unit.
    OutageEnd(usize),
    /// A failed recall's retry backoff elapsed; rejoin the drive queue.
    RetryReady(usize),
}

/// A unit of device work: foreground disk service, a tape recall, a
/// background tape flush, or a fault-injection hold parking a unit.
#[derive(Debug, Clone, Copy)]
struct Job {
    kind: JobKind,
    /// Device the job runs on: `Disk` for foreground service, else the
    /// tape tier.
    device: DeviceClass,
    write: bool,
    size: u64,
    spindle: usize,
    /// When the job entered its device queue (flush contention and
    /// outage-attribution metrics).
    queued_ms: SimMs,
}

#[derive(Debug, Clone, Copy)]
enum JobKind {
    /// Foreground disk service for reference `r` (hit or write).
    Disk { r: usize },
    /// Tape recall for `file`, issued by reference `r`.
    Recall {
        file: FileId,
        r: usize,
        /// Recall sequence number (the fault schedule's read-error
        /// counter).
        seq: u64,
        /// Failed attempts so far; bounded by the plan's retry budget.
        attempt: u32,
        /// This attempt was chosen to fail at its first byte; set at
        /// transfer start, consumed and cleared at transfer end.
        failing: bool,
    },
    /// Background tape flush; `gated` is the reference stalled on it,
    /// `seq` the flush's spawn-order sequence number (the identity its
    /// counter-noise timing draws are keyed by).
    Flush { gated: Option<usize>, seq: u64 },
    /// Fault injection: hold one unit of `target`'s pool until `end_ms`
    /// (a failed drive, a robot under repair, an operator off shift).
    OutageHold { target: FaultTarget, end_ms: SimMs },
}

/// Per-reference progress state.
#[derive(Debug, Clone, Copy)]
struct RefState {
    arrival_ms: SimMs,
    first_byte_ms: SimMs,
    id: FileId,
    size: u64,
    write: bool,
    served: ServedBy,
    device: DeviceClass,
    done: bool,
    /// Stall flushes that must land on tape before disk service starts.
    gate: u32,
    /// MSCP dispatch finished while gated; start when the gate clears.
    ready: bool,
    /// Counter-noise mode only: the recall sequence number assigned at
    /// *arrival* for `Recall`-served references, so a distributed
    /// replica that classifies in trace order assigns the same
    /// identities. Legacy mode assigns at dispatch and ignores this.
    recall_seq: u64,
}

/// An in-flight recall that references may coalesce onto.
#[derive(Debug, Default)]
struct OutstandingRecall {
    first_byte_ms: Option<SimMs>,
    waiters: Vec<usize>,
}

struct Engine<'a, 'p> {
    cfg: &'a SimConfig,
    cache: DiskCache<'p>,
    rng: SmallRng,
    queue: EventQueue<HEv>,
    /// The materialized fault schedule; inert on fault-free runs, where
    /// it injects no events and decides no failures.
    schedule: FaultSchedule,
    /// Degraded-mode accumulator; `Some` exactly when the schedule is
    /// active.
    fault: Option<DegradedOutcome>,
    states: Vec<RefState>,
    jobs: Vec<Job>,
    /// Recalls in flight (only with coalescing on): a dense arena
    /// indexed by [`FileId`], grown on demand — `Some` exactly while a
    /// recall for that file is outstanding.
    outstanding: Vec<Option<OutstandingRecall>>,
    /// Each file's tape tier, from the trace's device annotations, in
    /// the same [`FileId`]-indexed arena layout.
    file_tape: Vec<Option<DeviceClass>>,
    /// Live miss-latency estimator: fed by every resolved recall,
    /// consulted (via the cache's hint) before every reference.
    feedback: LatencyFeedback,
    /// Reusable buffer for cache side effects.
    ops: Vec<CacheOp>,
    /// Counter-noise mode: next arrival-order recall sequence number.
    next_recall_seq: u64,
    next_emit: usize,
    spindles: Vec<Pool>,
    silo: Pool,
    manual: Pool,
    robot: Pool,
    operators: Pool,
    movers: Pool,
    tape_movers: Pool,
    /// Bytes left on the mounted append cartridge `[silo, manual]`.
    cart_remaining: [u64; 2],
    metrics: HierarchyMetrics,
    first_ms: SimMs,
    last_ms: SimMs,
}

impl<'a, 'p> Engine<'a, 'p> {
    fn new(
        cfg: &'a SimConfig,
        cache_cfg: CacheConfig,
        policy: &'p dyn MigrationPolicy,
        schedule: FaultSchedule,
    ) -> Self {
        Engine {
            cfg,
            cache: DiskCache::new(cache_cfg, policy),
            rng: SmallRng::seed_from_u64(cfg.seed),
            queue: EventQueue::new(),
            fault: schedule.is_active().then(DegradedOutcome::default),
            schedule,
            states: Vec::new(),
            jobs: Vec::new(),
            outstanding: Vec::new(),
            file_tape: Vec::new(),
            feedback: LatencyFeedback::new(),
            ops: Vec::new(),
            next_recall_seq: 0,
            next_emit: 0,
            spindles: vec![Pool::new(1); cfg.disk_spindles.max(1)],
            silo: Pool::new(cfg.silo_drives),
            manual: Pool::new(cfg.manual_drives),
            robot: Pool::new(cfg.robot_arms),
            operators: Pool::new(cfg.operators),
            movers: Pool::new(cfg.movers),
            tape_movers: Pool::new(cfg.tape_movers),
            cart_remaining: [0, 0],
            metrics: HierarchyMetrics::new(),
            first_ms: SimMs::MAX,
            last_ms: SimMs::MIN,
        }
    }

    fn run(mut self, refs: &[PreparedRef], mut sink: impl FnMut(RefOutcome)) -> HierarchyMetrics {
        // Fault windows become ordinary events in the same queue: an
        // inert schedule pushes nothing and the event stream is exactly
        // the pre-fault engine's.
        for w in 0..self.schedule.windows().len() {
            self.queue
                .push(self.schedule.windows()[w].start_ms, HEv::OutageStart(w));
        }
        let mut prev_ms = SimMs::MIN;
        for (i, pr) in refs.iter().enumerate() {
            let t_ms = pr.time * MS;
            assert!(t_ms >= prev_ms, "references must be sorted by time");
            prev_ms = t_ms;
            self.first_ms = self.first_ms.min(t_ms);
            while self.queue.peek_time().is_some_and(|t| t <= t_ms) {
                let (now, ev) = self.queue.pop().expect("peeked event");
                self.handle(now, ev);
            }
            self.arrive(i, pr, t_ms);
            self.emit_finished(&mut sink);
        }
        while let Some((now, ev)) = self.queue.pop() {
            self.handle(now, ev);
        }
        self.emit_finished(&mut sink);
        debug_assert_eq!(self.next_emit, self.states.len());

        self.metrics.requests = self.states.len() as u64;
        self.metrics.cache = *self.cache.stats();
        self.metrics.cache_fetch_retries = self.cache.fetch_retries();
        self.metrics.latency_feedback = self.feedback.clone();
        self.metrics.fault = self.fault;
        let span = (
            self.first_ms.min(self.last_ms),
            self.last_ms.max(self.first_ms),
        );
        self.metrics.utilisation.disk_spindles = self
            .spindles
            .iter()
            .map(|p| p.utilisation(span.0, span.1))
            .sum();
        self.metrics.utilisation.silo_drives = self.silo.utilisation(span.0, span.1);
        self.metrics.utilisation.manual_drives = self.manual.utilisation(span.0, span.1);
        self.metrics.utilisation.robot_arms = self.robot.utilisation(span.0, span.1);
        self.metrics.utilisation.operators = self.operators.utilisation(span.0, span.1);
        self.metrics.utilisation.movers =
            self.movers.utilisation(span.0, span.1) + self.tape_movers.utilisation(span.0, span.1);
        self.metrics
    }

    /// Emits every resolved reference, in arrival order.
    fn emit_finished(&mut self, sink: &mut impl FnMut(RefOutcome)) {
        while self.next_emit < self.states.len() && self.states[self.next_emit].done {
            let st = self.states[self.next_emit];
            sink(RefOutcome {
                index: self.next_emit,
                id: st.id,
                write: st.write,
                served: st.served,
                device: st.device,
                wait_s: (st.first_byte_ms - st.arrival_ms).max(0) as f64 / MS as f64,
            });
            self.next_emit += 1;
        }
    }

    /// Classifies one reference through the cache and turns its side
    /// effects into device traffic.
    fn arrive(&mut self, i: usize, pr: &PreparedRef, t_ms: SimMs) {
        let tape = tape_of(pr.device);
        if pr.id.index() >= self.file_tape.len() {
            self.file_tape.resize(pr.id.index() + 1, None);
            self.outstanding.resize_with(self.file_tape.len(), || None);
        }
        self.file_tape[pr.id.index()] = Some(tape);
        // Publish the current miss-wait estimate for this file's tier
        // and size before the cache classifies the reference: the touch
        // stamps it onto the entry, where latency-aware policies read
        // it at the next purge. Latency-blind policies ignore the hint,
        // which keeps their closed loop exactly equal to open loop.
        self.cache
            .set_est_miss_wait_s(self.feedback.estimate(tape, pr.size));
        let mut ops = std::mem::take(&mut self.ops);
        ops.clear();
        let served = if pr.write {
            self.cache
                .write_with(pr.id, pr.size, pr.time, pr.next_use, &mut |op| ops.push(op));
            ServedBy::DiskWrite
        } else {
            match self
                .cache
                .read_with(pr.id, pr.size, pr.time, pr.next_use, &mut |op| ops.push(op))
            {
                ReadResult::Hit => ServedBy::DiskHit,
                ReadResult::DelayedHit if self.cfg.recall_coalescing => ServedBy::DelayedHit,
                // Coalescing off: a delayed hit pays its own fetch.
                ReadResult::DelayedHit => ServedBy::Recall,
                ReadResult::Miss
                    if self.cfg.recall_coalescing && self.outstanding[pr.id.index()].is_some() =>
                {
                    // The file was evicted (or bypassed the cache) while
                    // its recall is still in flight: the bytes are
                    // already on the way, so the re-miss coalesces too.
                    ServedBy::DelayedHit
                }
                ReadResult::Miss => ServedBy::Recall,
            }
        };
        let device = match served {
            ServedBy::DiskHit | ServedBy::DiskWrite => DeviceClass::Disk,
            ServedBy::DelayedHit | ServedBy::Recall => tape,
        };
        debug_assert_eq!(i, self.states.len());
        // Counter-noise mode fixes the recall's identity here, in
        // arrival order — classification order is what a distributed
        // replica can reproduce; legacy dispatch order depends on the
        // lognormal overhead draws.
        let recall_seq = if self.cfg.counter_noise && served == ServedBy::Recall {
            self.next_recall_seq += 1;
            self.next_recall_seq - 1
        } else {
            0
        };
        self.states.push(RefState {
            arrival_ms: t_ms,
            first_byte_ms: t_ms,
            id: pr.id,
            size: pr.size,
            write: pr.write,
            served,
            device,
            done: false,
            gate: 0,
            ready: false,
            recall_seq,
        });

        // Cache side effects become tape traffic.
        for &op in &ops {
            match op {
                CacheOp::Fetch { .. } | CacheOp::Drop { .. } => {}
                CacheOp::Writeback { id, bytes } => {
                    let at = t_ms + (self.cfg.writeback_delay_s * MS as f64) as SimMs;
                    self.spawn_flush(id, bytes, None, at);
                }
                CacheOp::StallFlush { id, bytes } => {
                    // Only disk-served foregrounds stall on the flush; a
                    // miss's recall is the longer pole and proceeds.
                    let gated = if served == ServedBy::DiskWrite || served == ServedBy::DiskHit {
                        self.states[i].gate += 1;
                        Some(i)
                    } else {
                        None
                    };
                    self.spawn_flush(id, bytes, gated, t_ms);
                }
                CacheOp::PurgeFlush { id, bytes } => {
                    self.spawn_flush(id, bytes, None, t_ms);
                }
            }
        }
        self.ops = ops;

        match served {
            ServedBy::DiskHit | ServedBy::DiskWrite | ServedBy::Recall => {
                let d = if self.cfg.counter_noise {
                    crate::noise::lognormal_ms(
                        self.cfg.seed,
                        crate::noise::dispatch_key(i as u64),
                        self.cfg.mscp_overhead_median_s,
                        self.cfg.mscp_overhead_sigma,
                    )
                } else {
                    self.lognormal_ms(
                        self.cfg.mscp_overhead_median_s,
                        self.cfg.mscp_overhead_sigma,
                    )
                };
                self.queue.push(t_ms + d, HEv::Dispatch(i));
                if served == ServedBy::Recall && self.cfg.recall_coalescing {
                    self.outstanding[pr.id.index()] = Some(OutstandingRecall::default());
                }
            }
            ServedBy::DelayedHit => {
                self.metrics.delayed_hits += 1;
                let o = self.outstanding[pr.id.index()]
                    .as_mut()
                    .expect("delayed hit implies an outstanding recall");
                match o.first_byte_ms {
                    // Data already streaming to disk: served on arrival.
                    Some(fb) => self.resolve_ref(i, fb),
                    None => o.waiters.push(i),
                }
            }
        }
    }

    /// Creates a background tape-flush job and schedules its queue entry.
    fn spawn_flush(&mut self, file: FileId, bytes: u64, gated: Option<usize>, at: SimMs) {
        let tape = self
            .file_tape
            .get(file.index())
            .copied()
            .flatten()
            .unwrap_or(DeviceClass::TapeSilo);
        let j = self.jobs.len();
        self.jobs.push(Job {
            kind: JobKind::Flush {
                gated,
                // Spawn order is classification order, which both the
                // legacy engine and a trace-order replica agree on.
                seq: self.metrics.flush_jobs,
            },
            device: tape,
            write: true,
            size: bytes,
            spindle: 0,
            queued_ms: at,
        });
        self.metrics.flush_jobs += 1;
        self.metrics.flush_bytes += bytes;
        self.queue.push(at, HEv::FlushReady(j));
    }

    fn handle(&mut self, now: SimMs, ev: HEv) {
        self.last_ms = self.last_ms.max(now);
        match ev {
            HEv::Dispatch(r) => self.dispatched(r, now),
            HEv::FlushReady(j) => {
                self.jobs[j].queued_ms = now;
                self.join_tape_queue(j, now);
            }
            HEv::MountDone(j) => self.mount_done(j, now),
            HEv::SeekDone(j) => self.seek_done(j, now),
            HEv::TransferDone(j) => self.transfer_done(j, now),
            HEv::DriveFree(j) => self.drive_free(j, now),
            HEv::OutageStart(w) => self.outage_start(w, now),
            HEv::OutageEnd(j) => self.outage_release(j, now),
            HEv::RetryReady(j) => {
                self.jobs[j].queued_ms = now;
                self.join_tape_queue(j, now);
            }
        }
    }

    /// A fault window opens: contend for one unit of the target pool
    /// like any other job. If the pool is saturated the hold queues —
    /// the unit "fails" as it comes free, which is how a busy drive
    /// dies mid-shift.
    fn outage_start(&mut self, w: usize, now: SimMs) {
        let window = self.schedule.windows()[w];
        let j = self.jobs.len();
        self.jobs.push(Job {
            kind: JobKind::OutageHold {
                target: window.target,
                end_ms: window.end_ms,
            },
            device: window.target.tier(),
            write: false,
            size: 0,
            spindle: 0,
            queued_ms: now,
        });
        let granted = match window.target {
            FaultTarget::SiloDrive => self.silo.acquire(j, now),
            FaultTarget::ManualDrive => self.manual.acquire(j, now),
            FaultTarget::RobotArm => self.robot.acquire(j, now),
            FaultTarget::Operator => self.operators.acquire(j, now),
        };
        if granted {
            self.outage_hold_granted(j, now);
        }
    }

    /// A hold owns its unit: park it until the window's repair time, or
    /// hand it straight back when the window already elapsed while the
    /// hold sat in the queue.
    fn outage_hold_granted(&mut self, j: usize, now: SimMs) {
        let JobKind::OutageHold { end_ms, .. } = self.jobs[j].kind else {
            unreachable!("outage grant on a non-hold job");
        };
        if now >= end_ms {
            self.outage_release(j, now);
        } else {
            if let Some(f) = &mut self.fault {
                f.outage_events += 1;
            }
            self.queue.push(end_ms, HEv::OutageEnd(j));
        }
    }

    /// Repair done (or the window expired in-queue): return the unit to
    /// its pool and wake the next waiter through the normal grant path.
    fn outage_release(&mut self, j: usize, now: SimMs) {
        let JobKind::OutageHold { target, .. } = self.jobs[j].kind else {
            unreachable!("outage release on a non-hold job");
        };
        match target {
            FaultTarget::SiloDrive => {
                if let Some(n) = self.silo.release(now) {
                    self.drive_granted(n, now);
                }
            }
            FaultTarget::ManualDrive => {
                if let Some(n) = self.manual.release(now) {
                    self.drive_granted(n, now);
                }
            }
            FaultTarget::RobotArm => {
                if let Some(n) = self.robot.release(now) {
                    self.mount_started(n, now);
                }
            }
            FaultTarget::Operator => {
                if let Some(n) = self.operators.release(now) {
                    self.mount_started(n, now);
                }
            }
        }
    }

    /// MSCP work done: start disk service or issue the recall.
    fn dispatched(&mut self, r: usize, now: SimMs) {
        match self.states[r].served {
            ServedBy::DiskHit | ServedBy::DiskWrite => {
                self.states[r].ready = true;
                if self.states[r].gate == 0 {
                    self.start_disk(r, now);
                }
            }
            ServedBy::Recall => {
                let (id, size, tape) = {
                    let st = &self.states[r];
                    (st.id, st.size, st.device)
                };
                let j = self.jobs.len();
                self.jobs.push(Job {
                    kind: JobKind::Recall {
                        file: id,
                        r,
                        // The issue-order sequence number keys the fault
                        // schedule's counter-based read-error decisions.
                        // Counter-noise mode pinned it at arrival;
                        // legacy issues it here, in dispatch order.
                        seq: if self.cfg.counter_noise {
                            self.states[r].recall_seq
                        } else {
                            self.metrics.recalls
                        },
                        attempt: 0,
                        failing: false,
                    },
                    device: tape,
                    write: false,
                    size,
                    spindle: 0,
                    queued_ms: now,
                });
                self.metrics.recalls += 1;
                self.join_tape_queue(j, now);
            }
            ServedBy::DelayedHit => unreachable!("delayed hits are never dispatched"),
        }
    }

    /// Foreground disk service: queue on the file's spindle.
    fn start_disk(&mut self, r: usize, now: SimMs) {
        let (id, size, write) = {
            let st = &self.states[r];
            (st.id, st.size, st.write)
        };
        let j = self.jobs.len();
        self.jobs.push(Job {
            kind: JobKind::Disk { r },
            device: DeviceClass::Disk,
            write,
            size,
            spindle: id.index() % self.spindles.len(),
            queued_ms: now,
        });
        let spindle = self.jobs[j].spindle;
        if self.spindles[spindle].acquire(j, now) {
            self.spindle_granted(j, now);
        }
    }

    /// Spindle held: contend for a channel mover.
    fn spindle_granted(&mut self, j: usize, now: SimMs) {
        if self.movers.acquire(j, now) {
            self.mover_granted(j, now);
        }
    }

    /// Stage 2 for tape jobs: queue on a drive of the job's tier.
    ///
    /// This and the following stages model the same hardware as
    /// [`crate::sim`]'s open-loop engine and must use the same stage
    /// timings (mount, seek, cartridge-append, unload); the request
    /// models differ too much to share one engine — open-loop annotates
    /// records, this one carries recall waiters and flush gates — so a
    /// physics change there must be mirrored here.
    fn join_tape_queue(&mut self, j: usize, now: SimMs) {
        let granted = match self.jobs[j].device {
            DeviceClass::TapeSilo => self.silo.acquire(j, now),
            DeviceClass::TapeManual => self.manual.acquire(j, now),
            DeviceClass::Disk => unreachable!("disk jobs do not queue on tape drives"),
        };
        if granted {
            self.drive_granted(j, now);
        }
    }

    /// Drive held: mount if needed, else go straight to a tape mover.
    fn drive_granted(&mut self, j: usize, now: SimMs) {
        let job = self.jobs[j];
        if let JobKind::OutageHold { .. } = job.kind {
            // A queued fault window finally got its unit.
            self.outage_hold_granted(j, now);
            return;
        }
        if let JobKind::Flush { .. } = job.kind {
            self.metrics
                .flush_queue_wait
                .record((now - job.queued_ms).max(0) as f64 / MS as f64);
        }
        self.attribute_outage_wait(job.device, job.queued_ms, now);
        if job.write {
            let slot = cart_slot(job.device);
            if self.cart_remaining[slot] >= job.size {
                // Append to the mounted cartridge: no mount, no seek.
                if self.tape_movers.acquire(j, now) {
                    self.mover_granted(j, now);
                }
                return;
            }
        }
        // Reads always mount the file's cartridge; writes mount a fresh
        // append cartridge when the current one is full.
        // Re-stamp the queue-entry time: the job now waits in the
        // mounter queue, a separate outage-attribution interval.
        self.jobs[j].queued_ms = now;
        let granted = match job.device {
            DeviceClass::TapeSilo => self.robot.acquire(j, now),
            DeviceClass::TapeManual => self.operators.acquire(j, now),
            DeviceClass::Disk => unreachable!(),
        };
        if granted {
            self.mount_started(j, now);
        }
    }

    /// Robot arm or operator engaged: schedule the mount completion.
    fn mount_started(&mut self, j: usize, now: SimMs) {
        if let JobKind::OutageHold { .. } = self.jobs[j].kind {
            // A queued mounter-outage window finally got its unit.
            self.outage_hold_granted(j, now);
            return;
        }
        self.attribute_outage_wait(self.jobs[j].device, self.jobs[j].queued_ms, now);
        let d = match (self.jobs[j].device, self.cfg.counter_noise) {
            (DeviceClass::TapeSilo, false) => self.jitter_ms(self.cfg.robot_mount_s, 0.2),
            (DeviceClass::TapeSilo, true) => crate::noise::jitter_ms(
                self.cfg.seed,
                self.noise_key(j, crate::noise::STAGE_MOUNT),
                self.cfg.robot_mount_s,
                0.2,
            ),
            (DeviceClass::TapeManual, false) => self.lognormal_ms(
                self.cfg.operator_mount_median_s,
                self.cfg.operator_mount_sigma,
            ),
            (DeviceClass::TapeManual, true) => crate::noise::lognormal_ms(
                self.cfg.seed,
                self.noise_key(j, crate::noise::STAGE_MOUNT),
                self.cfg.operator_mount_median_s,
                self.cfg.operator_mount_sigma,
            ),
            (DeviceClass::Disk, _) => unreachable!(),
        };
        self.queue.push(now + d, HEv::MountDone(j));
    }

    /// Adds the slice of a queue wait that overlapped an outage window
    /// of the waiting job's tier to the degraded-mode accumulator.
    fn attribute_outage_wait(&mut self, tier: DeviceClass, queued_ms: SimMs, now: SimMs) {
        if let Some(f) = &mut self.fault {
            let overlap = self.schedule.outage_overlap_ms(tier, queued_ms, now);
            if overlap > 0 {
                f.outage_wait_s += overlap as f64 / MS as f64;
            }
        }
    }

    /// Mount finished: hand the mounter over and position the tape.
    fn mount_done(&mut self, j: usize, now: SimMs) {
        let job = self.jobs[j];
        let next = match job.device {
            DeviceClass::TapeSilo => self.robot.release(now),
            DeviceClass::TapeManual => self.operators.release(now),
            DeviceClass::Disk => unreachable!(),
        };
        if let Some(n) = next {
            self.mount_started(n, now);
        }
        if job.write {
            // Fresh append cartridge: position to start of tape.
            self.cart_remaining[cart_slot(job.device)] = self.cfg.cartridge_bytes;
            let d = if self.cfg.counter_noise {
                crate::noise::jitter_ms(
                    self.cfg.seed,
                    self.noise_key(j, crate::noise::STAGE_SEEK),
                    3.0,
                    0.3,
                )
            } else {
                self.jitter_ms(3.0, 0.3)
            };
            self.queue.push(now + d, HEv::SeekDone(j));
        } else {
            let seek_s = if self.cfg.counter_noise {
                crate::noise::range(
                    self.cfg.seed,
                    self.noise_key(j, crate::noise::STAGE_SEEK),
                    self.cfg.tape_seek_min_s,
                    self.cfg.tape_seek_max_s,
                )
            } else {
                self.rng
                    .gen_range(self.cfg.tape_seek_min_s..self.cfg.tape_seek_max_s)
            };
            self.queue
                .push(now + (seek_s * MS as f64) as SimMs, HEv::SeekDone(j));
        }
    }

    /// Positioned: wait for a tape mover.
    fn seek_done(&mut self, j: usize, now: SimMs) {
        if self.tape_movers.acquire(j, now) {
            self.mover_granted(j, now);
        }
    }

    /// The transfer begins — this is the job's first byte (unless this
    /// recall attempt is fated to fail, in which case nobody is served
    /// and the failure surfaces at transfer end).
    fn mover_granted(&mut self, j: usize, now: SimMs) {
        let job = self.jobs[j];
        let setup_ms = if job.device == DeviceClass::Disk {
            (self.cfg.disk_seek_s * MS as f64) as SimMs
        } else {
            0
        };
        let first_byte = now + setup_ms;
        match job.kind {
            JobKind::Disk { r } => self.resolve_ref(r, first_byte),
            JobKind::Recall {
                file,
                r,
                seq,
                attempt,
                ..
            } => {
                // The media read error is decided before anyone is
                // served: a failing attempt reads the tape but delivers
                // garbage, so the requester and every coalesced waiter
                // stay parked for the retry.
                if self.schedule.read_fails(seq, attempt) {
                    let JobKind::Recall { failing, .. } = &mut self.jobs[j].kind else {
                        unreachable!("job kind cannot change");
                    };
                    *failing = true;
                } else {
                    self.resolve_ref(r, first_byte);
                    if let Some(o) = self.outstanding[file.index()].as_mut() {
                        o.first_byte_ms = Some(first_byte);
                        let waiters = std::mem::take(&mut o.waiters);
                        for w in waiters {
                            self.resolve_ref(w, first_byte);
                        }
                    }
                }
            }
            JobKind::Flush { .. } => {}
            JobKind::OutageHold { .. } => unreachable!("holds never reach a mover"),
        }
        // Slow-drive degradation scales the healthy rate; a factor of
        // exactly 1.0 (no window, or no plan) leaves the arithmetic
        // bit-identical to the fault-free engine.
        let factor = self.schedule.rate_factor_at(job.device, first_byte);
        if factor < 1.0 {
            if let Some(f) = &mut self.fault {
                f.slow_transfers += 1;
            }
        }
        let rate = self.rate_of(job.device) * factor;
        let jitter = 1.0
            + if self.cfg.counter_noise {
                crate::noise::range(
                    self.cfg.seed,
                    self.noise_key(j, crate::noise::STAGE_RATE),
                    -self.cfg.rate_jitter,
                    self.cfg.rate_jitter,
                )
            } else {
                self.rng
                    .gen_range(-self.cfg.rate_jitter..self.cfg.rate_jitter)
            };
        let xfer_ms = (job.size as f64 / (rate * jitter) * 1000.0) as SimMs;
        self.queue
            .push(first_byte + xfer_ms.max(1), HEv::TransferDone(j));
        if job.write && job.device != DeviceClass::Disk {
            let slot = cart_slot(job.device);
            self.cart_remaining[slot] = self.cart_remaining[slot].saturating_sub(job.size);
        }
    }

    /// Transfer complete: release the mover, then the device.
    fn transfer_done(&mut self, j: usize, now: SimMs) {
        let job = self.jobs[j];
        let mover = if job.device == DeviceClass::Disk {
            &mut self.movers
        } else {
            &mut self.tape_movers
        };
        if let Some(n) = mover.release(now) {
            self.mover_granted(n, now);
        }
        match job.kind {
            JobKind::Disk { .. } => {
                if let Some(n) = self.spindles[job.spindle].release(now) {
                    self.spindle_granted(n, now);
                }
            }
            JobKind::Recall {
                file,
                failing: attempt_failed,
                ..
            } => {
                let d = (self.cfg.tape_unload_s * MS as f64) as SimMs;
                if attempt_failed {
                    // Media read error: the bytes on disk are garbage.
                    // Re-arm the cache's outstanding-fetch state (reads
                    // keep coalescing), release the drive, and rejoin
                    // the queue after the backoff — waiters parked on
                    // the outstanding recall ride along to the retry.
                    self.cache.fetch_failed(file);
                    if let Some(f) = &mut self.fault {
                        f.read_retries += 1;
                    }
                    let JobKind::Recall {
                        failing, attempt, ..
                    } = &mut self.jobs[j].kind
                    else {
                        unreachable!("job kind cannot change");
                    };
                    *failing = false;
                    *attempt += 1;
                    self.queue.push(now + d, HEv::DriveFree(j));
                    self.queue.push(
                        now + d + self.schedule.retry_backoff_ms(),
                        HEv::RetryReady(j),
                    );
                } else {
                    // The file is fully staged: further reads are plain
                    // hits.
                    self.cache.fetch_complete(file);
                    if let Some(o) = self.outstanding[file.index()].take() {
                        debug_assert!(o.waiters.is_empty(), "waiters resolve at first byte");
                    }
                    self.queue.push(now + d, HEv::DriveFree(j));
                }
            }
            JobKind::Flush { gated, .. } => {
                if let Some(r) = gated {
                    self.states[r].gate -= 1;
                    if self.states[r].gate == 0 && self.states[r].ready {
                        self.start_disk(r, now);
                    }
                }
                let d = (self.cfg.tape_unload_s * MS as f64) as SimMs;
                self.queue.push(now + d, HEv::DriveFree(j));
            }
            JobKind::OutageHold { .. } => unreachable!("holds never transfer"),
        }
    }

    /// Tape drive unloaded: pass it to the next queued job.
    fn drive_free(&mut self, j: usize, now: SimMs) {
        let next = match self.jobs[j].device {
            DeviceClass::TapeSilo => self.silo.release(now),
            DeviceClass::TapeManual => self.manual.release(now),
            DeviceClass::Disk => unreachable!("disks have no unload"),
        };
        if let Some(n) = next {
            self.drive_granted(n, now);
        }
    }

    /// Finalizes a reference's first byte and records its wait.
    fn resolve_ref(&mut self, i: usize, first_byte_ms: SimMs) {
        let (arrival, served) = {
            let st = &self.states[i];
            debug_assert!(!st.done, "reference resolved twice");
            (st.arrival_ms, st.served)
        };
        let fb = first_byte_ms.max(arrival);
        self.states[i].first_byte_ms = fb;
        self.states[i].done = true;
        let wait_s = (fb - arrival) as f64 / MS as f64;
        match served {
            ServedBy::DiskHit => self.metrics.hit_wait.record(wait_s),
            ServedBy::DelayedHit => self.metrics.delayed_hit_wait.record(wait_s),
            ServedBy::Recall => {
                self.metrics.miss_wait.record(wait_s);
                // The feedback loop closes here: a measured recall wait
                // (retries, outages, and queueing included) updates the
                // estimate future victim rankings will see. `device` is
                // the recall's tape tier for a `Recall`-served ref.
                let st = &self.states[i];
                self.feedback.record(st.device, st.size, wait_s);
            }
            ServedBy::DiskWrite => self.metrics.write_wait.record(wait_s),
        }
    }

    fn rate_of(&self, device: DeviceClass) -> f64 {
        match device {
            DeviceClass::Disk => self.cfg.disk_rate,
            DeviceClass::TapeSilo => self.cfg.silo_rate,
            DeviceClass::TapeManual => self.cfg.manual_rate,
        }
    }

    /// The counter-noise identity key of job `j`'s draw at `stage`:
    /// recalls by (issue seq, attempt), flushes by spawn seq, disk jobs
    /// by the reference they serve.
    fn noise_key(&self, j: usize, stage: u64) -> u64 {
        match self.jobs[j].kind {
            JobKind::Disk { r } => crate::noise::disk_key(r as u64, stage),
            JobKind::Recall { seq, attempt, .. } => crate::noise::recall_key(seq, attempt, stage),
            JobKind::Flush { seq, .. } => crate::noise::flush_key(seq, stage),
            JobKind::OutageHold { .. } => unreachable!("holds draw no noise"),
        }
    }

    fn lognormal_ms(&mut self, median_s: f64, sigma: f64) -> SimMs {
        let z = standard_normal(&mut self.rng);
        ((median_s * (sigma * z).exp()) * MS as f64) as SimMs
    }

    fn jitter_ms(&mut self, base_s: f64, rel: f64) -> SimMs {
        let f = 1.0 + self.rng.gen_range(-rel..rel);
        ((base_s * f) * MS as f64) as SimMs
    }
}

/// A file's archival tape tier: shelf files restage from the shelf,
/// everything else (including files the trace saw on disk) lives in the
/// silo.
fn tape_of(device: DeviceClass) -> DeviceClass {
    match device {
        DeviceClass::TapeManual => DeviceClass::TapeManual,
        _ => DeviceClass::TapeSilo,
    }
}

fn cart_slot(device: DeviceClass) -> usize {
    match device {
        DeviceClass::TapeSilo => 0,
        DeviceClass::TapeManual => 1,
        DeviceClass::Disk => unreachable!("disks have no cartridges"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_migrate::eval::TracePrep;
    use fmig_migrate::policy::{Lru, Stp};
    use fmig_trace::time::TRACE_EPOCH;
    use fmig_trace::{Endpoint, TraceRecord};

    fn silo_read(id: u64, t: i64, size: u64) -> PreparedRef {
        PreparedRef {
            id: id.into(),
            size,
            write: false,
            time: t,
            next_use: None,
            device: DeviceClass::TapeSilo,
        }
    }

    fn disk_write(id: u64, t: i64, size: u64) -> PreparedRef {
        PreparedRef {
            id: id.into(),
            size,
            write: true,
            time: t,
            next_use: None,
            device: DeviceClass::Disk,
        }
    }

    fn cache_cfg(capacity: u64) -> CacheConfig {
        CacheConfig {
            capacity,
            high_watermark: 0.9,
            low_watermark: 0.5,
            eager_writeback: true,
        }
    }

    /// A skewed trace through the full TracePrep pipeline: hot small
    /// files re-read constantly plus a stream of cold large ones.
    fn skewed_prepared() -> PreparedTrace {
        let mut prep = TracePrep::new();
        let mut t = 0i64;
        for round in 0..40 {
            for hot in 0..5 {
                t += 25;
                prep.observe(&TraceRecord::read(
                    Endpoint::MssDisk,
                    TRACE_EPOCH.add_secs(t),
                    400_000,
                    format!("/hot/f{hot}"),
                    1,
                ));
            }
            t += 25;
            prep.observe(&TraceRecord::read(
                Endpoint::MssTapeSilo,
                TRACE_EPOCH.add_secs(t),
                3_000_000,
                format!("/cold/f{round}"),
                1,
            ));
            t += 25;
            prep.observe(&TraceRecord::write(
                Endpoint::MssTapeSilo,
                TRACE_EPOCH.add_secs(t),
                1_500_000,
                format!("/out/f{round}"),
                1,
            ));
        }
        prep.finish()
    }

    #[test]
    fn closed_loop_reproduces_open_loop_decisions_exactly() {
        let prepared = skewed_prepared();
        let eval = EvalConfig::with_capacity(5_000_000);
        for policy in [&Stp::classic() as &dyn MigrationPolicy, &Lru] {
            let open = prepared.replay(policy, &eval);
            let sim = HierarchySimulator::new(SimConfig::default());
            let closed = sim.evaluate(&prepared, policy, &eval);
            assert_eq!(open.stats, closed.stats, "{} diverged", policy.name());
            assert_eq!(open.miss_ratio, closed.miss_ratio);
            assert_eq!(open.byte_miss_ratio, closed.byte_miss_ratio);
            // ... but the closed loop measured real waits.
            let lat = closed.latency.expect("latency-true outcome");
            assert!(lat.mean_read_wait_s > 0.0);
            assert!(lat.mean_miss_wait_s > 0.0);
            assert!(lat.p99_read_wait_s >= lat.mean_read_wait_s);
        }
    }

    #[test]
    fn person_minutes_come_from_measured_waits() {
        let prepared = skewed_prepared();
        let eval = EvalConfig {
            wait_s_per_miss: 60.0,
            ..EvalConfig::with_capacity(5_000_000)
        };
        let lru = Lru;
        let sim = HierarchySimulator::new(SimConfig::default());
        let closed = sim.evaluate(&prepared, &lru, &eval);
        let lat = closed.latency.unwrap();
        let expected = closed
            .stats
            .person_minutes_per_day(lat.mean_miss_wait_s, eval.trace_days);
        assert!((closed.person_minutes_per_day - expected).abs() < 1e-12);
        assert_eq!(closed.wait_s_per_miss(&eval), lat.mean_miss_wait_s);
        // The open-loop outcome still charges the constant.
        let open = prepared.replay(&lru, &eval);
        assert_eq!(open.wait_s_per_miss(&eval), 60.0);
    }

    #[test]
    fn concurrent_misses_coalesce_onto_one_recall() {
        let refs: Vec<PreparedRef> = (0..5).map(|k| silo_read(7, k, 40_000_000)).collect();
        let lru = Lru;
        let sim = HierarchySimulator::new(SimConfig::uncontended());
        let mut outcomes = Vec::new();
        let m = sim.run_streaming(cache_cfg(1 << 30), &lru, &refs, |o| outcomes.push(o));
        assert_eq!(m.recalls, 1, "all references share one recall");
        assert_eq!(m.delayed_hits, 4);
        assert_eq!(m.cache.read_misses, 1);
        assert_eq!(m.cache.read_hits, 4);
        // No coalesced request waits longer than the fetch it joined.
        let miss_wait = outcomes
            .iter()
            .find(|o| o.served == ServedBy::Recall)
            .expect("the miss")
            .wait_s;
        for o in outcomes.iter().filter(|o| o.served == ServedBy::DelayedHit) {
            assert!(
                o.wait_s <= miss_wait,
                "coalesced wait {} exceeds the recall's {miss_wait}",
                o.wait_s
            );
        }
    }

    #[test]
    fn coalescing_off_issues_independent_fetches() {
        let refs: Vec<PreparedRef> = (0..4).map(|k| silo_read(7, k, 40_000_000)).collect();
        let lru = Lru;
        let cfg = SimConfig {
            recall_coalescing: false,
            ..SimConfig::uncontended()
        };
        let m = HierarchySimulator::new(cfg).run(cache_cfg(1 << 30), &lru, &refs);
        // The first miss inserts the file; later references are delayed
        // hits at the cache but each pays its own fetch.
        assert_eq!(m.recalls, 4);
        assert_eq!(m.delayed_hits, 0);
        // Cache decisions are unchanged by the engine knob.
        assert_eq!(m.cache.read_misses, 1);
        assert_eq!(m.cache.read_hits, 3);
    }

    #[test]
    fn late_references_during_the_stream_wait_less() {
        // A reference arriving after the recall's first byte but (for a
        // large file) before its transfer completes is served on the
        // spot: the data is already streaming to disk.
        let size = 150_000_000; // ~68 s of transfer at silo rate
        let lru = Lru;
        let sim = HierarchySimulator::new(SimConfig::uncontended());
        // Learn this seed's recall first byte, then join mid-stream (the
        // delayed hit consumes no RNG draws, so the recall replays
        // identically in the second run).
        let probe = sim.run(cache_cfg(1 << 30), &lru, &[silo_read(1, 0, size)]);
        let first_byte_s = probe.miss_wait.mean().ceil() as i64;
        let refs = vec![silo_read(1, 0, size), silo_read(1, first_byte_s + 5, size)];
        let m = sim.run(cache_cfg(1 << 30), &lru, &refs);
        assert_eq!(m.recalls, 1);
        assert_eq!(m.delayed_hits, 1);
        assert!(
            m.delayed_hit_wait.mean() < 2.0,
            "mid-stream joiner should barely wait: {}",
            m.delayed_hit_wait.mean()
        );
    }

    #[test]
    fn writebacks_generate_real_tape_traffic() {
        let refs: Vec<PreparedRef> = (0..30)
            .map(|k| disk_write(k as u64, k * 40, 10_000_000))
            .collect();
        let lru = Lru;
        let m = HierarchySimulator::new(SimConfig::default()).run(cache_cfg(1 << 30), &lru, &refs);
        assert_eq!(m.flush_jobs, 30, "every eager write flushes");
        assert_eq!(m.flush_bytes, 300_000_000);
        assert!(
            m.utilisation.silo_drives > 0.0,
            "flushes must occupy tape drives"
        );
        assert!(m.flush_queue_wait.count() == 30);
    }

    #[test]
    fn flush_traffic_slows_recalls_down() {
        // Reads of cold files against a heavy write-behind stream on a
        // one-drive silo: the same reads without the writes reach their
        // first byte sooner.
        let mut with_writes = Vec::new();
        let mut reads_only = Vec::new();
        for k in 0..25i64 {
            with_writes.push(disk_write(1000 + k as u64, k * 20, 60_000_000));
            let rd = silo_read(k as u64, k * 20 + 10, 1_000_000);
            with_writes.push(rd);
            reads_only.push(rd);
        }
        let lru = Lru;
        let cfg = SimConfig {
            silo_drives: 1,
            writeback_delay_s: 0.0,
            ..SimConfig::default()
        };
        let sim = HierarchySimulator::new(cfg);
        let loaded = sim.run(cache_cfg(1 << 40), &lru, &with_writes);
        let idle = sim.run(cache_cfg(1 << 40), &lru, &reads_only);
        assert!(
            loaded.miss_wait.mean() > idle.miss_wait.mean(),
            "contended {} vs idle {}",
            loaded.miss_wait.mean(),
            idle.miss_wait.mean()
        );
        assert!(loaded.flush_queue_wait.mean() > 0.0);
    }

    #[test]
    fn lazy_stall_flush_gates_the_triggering_write() {
        // Lazy write-back, cache small enough that the last write evicts
        // a dirty victim above the high watermark: that write's disk
        // service waits for the victim's tape flush.
        let cache = CacheConfig {
            capacity: 1000,
            high_watermark: 0.9,
            low_watermark: 0.5,
            eager_writeback: false,
        };
        let refs: Vec<PreparedRef> = (0..10).map(|k| disk_write(k as u64, k, 100)).collect();
        let lru = Lru;
        let m = HierarchySimulator::new(SimConfig::uncontended()).run(cache, &lru, &refs);
        assert!(m.cache.stall_bytes > 0, "trace must produce a stall");
        // The stalled write pays a tape mount inside its "disk" wait;
        // un-stalled writes finish in a few seconds.
        assert!(
            m.write_wait.quantile(1.0) >= 8.0,
            "stall invisible: p100 {}",
            m.write_wait.quantile(1.0)
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let prepared = skewed_prepared();
        let lru = Lru;
        let sim = HierarchySimulator::new(SimConfig::default().with_seed(99));
        let a = sim.run(cache_cfg(5_000_000), &lru, prepared.refs());
        let b = sim.run(cache_cfg(5_000_000), &lru, prepared.refs());
        assert_eq!(a, b);
        let other = HierarchySimulator::new(SimConfig::default().with_seed(100));
        let c = other.run(cache_cfg(5_000_000), &lru, prepared.refs());
        assert_ne!(
            a.miss_wait, c.miss_wait,
            "distinct seeds must decorrelate the noise"
        );
    }

    #[test]
    fn outcomes_stream_in_arrival_order() {
        let prepared = skewed_prepared();
        let lru = Lru;
        let sim = HierarchySimulator::new(SimConfig::default());
        let mut indices = Vec::new();
        let m = sim.run_streaming(cache_cfg(5_000_000), &lru, prepared.refs(), |o| {
            indices.push(o.index);
        });
        assert_eq!(indices.len(), prepared.len());
        assert!(indices.windows(2).all(|w| w[0] + 1 == w[1]));
        assert_eq!(m.requests, prepared.len() as u64);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_references_are_rejected() {
        let refs = vec![silo_read(1, 100, 1), silo_read(2, 0, 1)];
        let lru = Lru;
        let _ = HierarchySimulator::new(SimConfig::default()).run(cache_cfg(1000), &lru, &refs);
    }

    fn flaky_reads(prob: f64, retries: u32, backoff_s: f64) -> FaultPlan {
        FaultPlan {
            read_error_prob: prob,
            max_read_retries: retries,
            retry_backoff_s: backoff_s,
            ..FaultPlan::none()
        }
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_to_the_plain_run() {
        let prepared = skewed_prepared();
        let lru = Lru;
        let sim = HierarchySimulator::new(SimConfig::default().with_seed(7));
        let plain = sim.run(cache_cfg(5_000_000), &lru, prepared.refs());
        let faulted = sim.run_with_faults(
            cache_cfg(5_000_000),
            &lru,
            prepared.refs(),
            &FaultPlan::none(),
        );
        assert_eq!(plain, faulted);
        assert!(plain.fault.is_none());
    }

    /// Counter-noise mode replaces every timing draw but must never
    /// move a cache decision: for a latency-blind policy the cache
    /// counters match the legacy stream bit for bit (timing shifts,
    /// decisions do not), runs replay deterministically, and the
    /// faults-move-time-not-decisions invariant carries over.
    #[test]
    fn counter_noise_mode_preserves_cache_decisions() {
        let prepared = skewed_prepared();
        let lru = Lru;
        let cfg = SimConfig::default().with_seed(21);
        let legacy =
            HierarchySimulator::new(cfg.clone()).run(cache_cfg(5_000_000), &lru, prepared.refs());
        let keyed_sim = HierarchySimulator::new(cfg.with_counter_noise(true));
        let keyed = keyed_sim.run(cache_cfg(5_000_000), &lru, prepared.refs());
        let replay = keyed_sim.run(cache_cfg(5_000_000), &lru, prepared.refs());
        assert_eq!(keyed, replay, "counter-noise runs replay identically");
        assert_eq!(legacy.cache, keyed.cache, "decisions must not move");
        assert_eq!(legacy.requests, keyed.requests);
        assert!(keyed.read_wait().count() > 0);

        let plan = flaky_reads(0.4, 2, 30.0);
        let degraded =
            keyed_sim.run_with_faults(cache_cfg(5_000_000), &lru, prepared.refs(), &plan);
        assert_eq!(
            degraded.cache, keyed.cache,
            "faults move time, never decisions — in keyed mode too"
        );
        assert!(degraded.fault.expect("active plan").read_retries > 0);
    }

    #[test]
    fn read_errors_retry_with_backoff_and_eventually_serve() {
        let prepared = skewed_prepared();
        let lru = Lru;
        let sim = HierarchySimulator::new(SimConfig::uncontended().with_seed(11));
        let healthy = sim.run(cache_cfg(5_000_000), &lru, prepared.refs());
        let plan = flaky_reads(0.5, 3, 60.0);
        let mut outcomes = Vec::new();
        let degraded = sim.run_streaming_with_faults(
            cache_cfg(5_000_000),
            &lru,
            prepared.refs(),
            &plan,
            |o| outcomes.push(o),
        );
        // Every reference still reaches its first byte, in order.
        assert_eq!(outcomes.len(), prepared.len());
        let fault = degraded.fault.expect("fault metrics recorded");
        assert!(fault.read_retries > 0, "a 50% error rate must retry");
        // The cache-level retry counter is the same number: the engine
        // fails a fetch exactly when a tape read errors, so the live
        // daemon's `fetch_retries` channel agrees with the simulated
        // attribution.
        assert_eq!(degraded.cache_fetch_retries, fault.read_retries);
        assert_eq!(healthy.cache_fetch_retries, 0);
        // Faults move time, never cache decisions: counters identical.
        assert_eq!(healthy.cache, degraded.cache);
        // Longer-lived recalls absorb more re-misses by coalescing, so
        // the degraded run can only issue *fewer* recalls, never more.
        assert!(degraded.recalls > 0 && degraded.recalls <= healthy.recalls);
        // Retries make misses slower on average (each failed attempt
        // pays a full mount + seek + transfer + backoff again).
        assert!(
            degraded.miss_wait.mean() > healthy.miss_wait.mean(),
            "degraded {} vs healthy {}",
            degraded.miss_wait.mean(),
            healthy.miss_wait.mean()
        );
    }

    #[test]
    fn failed_recalls_keep_waiters_coalesced_across_retries() {
        // Every recall fails twice before succeeding (prob 1, budget 2):
        // concurrent readers of the file must still share one recall and
        // resolve together at the successful attempt's first byte.
        let refs: Vec<PreparedRef> = (0..5).map(|k| silo_read(7, k, 10_000_000)).collect();
        let lru = Lru;
        let sim = HierarchySimulator::new(SimConfig::uncontended().with_seed(3));
        let plan = flaky_reads(1.0, 2, 30.0);
        let mut outcomes = Vec::new();
        let m = sim.run_streaming_with_faults(cache_cfg(1 << 30), &lru, &refs, &plan, |o| {
            outcomes.push(o)
        });
        assert_eq!(m.recalls, 1, "retries must not issue extra recalls");
        assert_eq!(m.delayed_hits, 4);
        assert_eq!(m.fault.expect("fault metrics").read_retries, 2);
        let miss = outcomes
            .iter()
            .find(|o| o.served == ServedBy::Recall)
            .expect("the miss");
        // Two failed attempts: at least two extra mount+transfer+backoff
        // rounds before anyone is served.
        assert!(miss.wait_s > 120.0, "retries invisible: {}", miss.wait_s);
        for o in outcomes.iter().filter(|o| o.served == ServedBy::DelayedHit) {
            assert!(o.wait_s <= miss.wait_s, "waiter outlived the fetch");
        }
    }

    #[test]
    fn drive_outages_park_the_pool_and_attribute_wait() {
        // One silo drive, an outage process that is practically always
        // down: recalls queue behind the parked drive.
        let refs: Vec<PreparedRef> = (0..6)
            .map(|k| silo_read(k as u64, k * 30, 2_000_000))
            .collect();
        let lru = Lru;
        let cfg = SimConfig {
            silo_drives: 2,
            ..SimConfig::uncontended()
        };
        let sim = HierarchySimulator::new(cfg.with_seed(5));
        let healthy = sim.run(cache_cfg(1 << 30), &lru, &refs);
        let plan = FaultPlan {
            outages: vec![crate::fault::OutageClause {
                target: FaultTarget::SiloDrive,
                mean_up_s: 40.0,
                down_s: 600.0,
                jitter: 0.2,
            }],
            ..FaultPlan::none()
        };
        let degraded = sim.run_with_faults(cache_cfg(1 << 30), &lru, &refs, &plan);
        let fault = degraded.fault.expect("fault metrics");
        assert!(fault.outage_events > 0, "outage windows must park a unit");
        assert!(
            fault.outage_wait_s > 0.0,
            "queue wait overlapping an outage must be attributed"
        );
        assert!(
            degraded.miss_wait.mean() > healthy.miss_wait.mean(),
            "parked drives must slow recalls: degraded {} vs healthy {}",
            degraded.miss_wait.mean(),
            healthy.miss_wait.mean()
        );
        assert_eq!(healthy.cache, degraded.cache);
    }

    #[test]
    fn slow_drive_windows_stretch_transfers() {
        // Back-to-back large recalls on one drive: with an always-on
        // slow window, the first transfer occupies the drive ~4x longer,
        // so the second recall's first byte arrives later.
        let refs = vec![silo_read(1, 0, 60_000_000), silo_read(2, 1, 60_000_000)];
        let lru = Lru;
        let cfg = SimConfig {
            silo_drives: 1,
            ..SimConfig::uncontended()
        };
        let sim = HierarchySimulator::new(cfg.with_seed(9));
        let healthy = sim.run(cache_cfg(1 << 30), &lru, &refs);
        let plan = FaultPlan {
            slow_drive: Some(crate::fault::SlowDriveClause {
                rate_factor: 0.25,
                mean_up_s: 0.001,
                down_s: 1e9,
            }),
            ..FaultPlan::none()
        };
        let degraded = sim.run_with_faults(cache_cfg(1 << 30), &lru, &refs, &plan);
        let fault = degraded.fault.expect("fault metrics");
        assert!(fault.slow_transfers > 0, "transfers must hit the window");
        assert!(
            degraded.miss_wait.quantile(1.0) > healthy.miss_wait.quantile(1.0),
            "a slow drive must delay the queued recall"
        );
    }

    #[test]
    fn manual_tier_files_restage_from_the_shelf() {
        let refs = vec![PreparedRef {
            id: FileId::new(1),
            size: 50_000_000,
            write: false,
            time: 0,
            next_use: None,
            device: DeviceClass::TapeManual,
        }];
        let lru = Lru;
        let m =
            HierarchySimulator::new(SimConfig::uncontended()).run(cache_cfg(1 << 30), &lru, &refs);
        assert_eq!(m.recalls, 1);
        assert!(
            m.miss_wait.mean() >= 30.0,
            "operator mount missing: {}",
            m.miss_wait.mean()
        );
        assert!(m.utilisation.operators > 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::fault::{OutageClause, SlowDriveClause};
    use fmig_migrate::policy::Lru;
    use proptest::prelude::*;

    proptest! {
        /// Fault determinism at the engine level: one (plan, seed) pair
        /// replays to equal metrics; a different seed moves the noise;
        /// and the cache counters always equal the fault-free run's —
        /// faults move time, never decisions.
        #[test]
        fn fault_runs_are_deterministic_and_decision_preserving(
            seed in 0u64..500,
            prob in 0.0f64..0.9,
            retries in 0u32..4,
            n in 2usize..10,
        ) {
            let refs: Vec<PreparedRef> = (0..n)
                .map(|k| PreparedRef {
                    id: FileId::new((k % 3) as u32),
                    size: 1_000_000 + k as u64 * 700_000,
                    write: k % 4 == 0,
                    time: k as i64 * 20,
                    next_use: None,
                    device: DeviceClass::TapeSilo,
                })
                .collect();
            let plan = FaultPlan {
                outages: vec![OutageClause {
                    target: FaultTarget::SiloDrive,
                    mean_up_s: 300.0,
                    down_s: 120.0,
                    jitter: 0.3,
                }],
                read_error_prob: prob,
                max_read_retries: retries,
                retry_backoff_s: 20.0,
                slow_drive: Some(SlowDriveClause {
                    rate_factor: 0.5,
                    mean_up_s: 200.0,
                    down_s: 90.0,
                }),
            };
            let lru = Lru;
            let sim = HierarchySimulator::new(SimConfig::uncontended().with_seed(seed));
            let a = sim.run_with_faults(CacheConfig::with_capacity(1 << 24), &lru, &refs, &plan);
            let b = sim.run_with_faults(CacheConfig::with_capacity(1 << 24), &lru, &refs, &plan);
            prop_assert_eq!(&a, &b);
            prop_assert!(a.fault.is_some());
            let healthy = sim.run(CacheConfig::with_capacity(1 << 24), &lru, &refs);
            prop_assert_eq!(a.cache, healthy.cache);
            // Slower recalls can only absorb more re-misses, not fewer.
            prop_assert!(a.recalls <= healthy.recalls);
        }
    }

    proptest! {
        /// Delayed-hit coalescing semantics: N concurrent references to
        /// one missing file issue exactly one recall, and no coalesced
        /// request ever waits longer than the fetch it joined — the
        /// bound an independent fetch issued at the miss would set.
        #[test]
        fn coalesced_references_share_one_recall_and_never_wait_longer(
            offsets in proptest::collection::vec(0i64..6, 1..12),
            size in 1_000_000u64..120_000_000,
            seed in 0u64..1000,
        ) {
            let mut times: Vec<i64> = offsets.iter().scan(0i64, |acc, &d| {
                *acc += d;
                Some(*acc)
            }).collect();
            times.sort_unstable();
            let refs: Vec<PreparedRef> = times
                .iter()
                .map(|&t| PreparedRef {
                    id: FileId::new(42),
                    size,
                    write: false,
                    time: t,
                    next_use: None,
                    device: DeviceClass::TapeSilo,
                })
                .collect();
            let lru = Lru;
            let sim = HierarchySimulator::new(SimConfig::uncontended().with_seed(seed));
            let mut outcomes = Vec::new();
            let m = sim.run_streaming(
                CacheConfig::with_capacity(1 << 34),
                &lru,
                &refs,
                |o| outcomes.push(o),
            );
            prop_assert_eq!(m.recalls, 1);
            prop_assert_eq!(m.cache.read_misses, 1);
            prop_assert_eq!(m.delayed_hits, refs.len() as u64 - 1);
            let miss = outcomes.iter().find(|o| o.served == ServedBy::Recall).unwrap();
            for o in &outcomes {
                if o.served == ServedBy::DelayedHit {
                    prop_assert!(
                        o.wait_s <= miss.wait_s,
                        "waiter {} > recall {}", o.wait_s, miss.wait_s
                    );
                }
            }
        }
    }
}
