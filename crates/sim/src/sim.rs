//! Trace-driven discrete-event simulation of the NCAR MSS data path.
//!
//! Each trace record becomes a request that flows through the stages the
//! paper describes in §3.2 and §5.1.1:
//!
//! 1. **MSCP dispatch** — the UNICOS `lread`/`lwrite` message reaches the
//!    IBM 3090 control processor (lognormal overhead);
//! 2. **device acquisition** — a disk spindle, a silo drive, or a shelf
//!    drive, each with an FCFS queue;
//! 3. **media mount** — robot arms pick silo cartridges in ~7 s, human
//!    operators fetch shelved cartridges in ~2 minutes with a long
//!    lognormal tail; tape writes append to the currently mounted
//!    cartridge and only remount when it fills (which is why Table 3
//!    shows writes reaching the first byte faster than reads);
//! 4. **seek** — fresh tape mounts land at a uniform position (the ~50 s
//!    average seek the paper deduces); disk seeks are milliseconds;
//! 5. **bitfile mover transfer** — a bounded pool of movers streams data
//!    at ~2 MB/s observed, the global transfer-concurrency limit.
//!
//! The simulator annotates every record with its achieved startup latency
//! and transfer time and aggregates Figure 3 latency histograms.

use std::collections::VecDeque;

use fmig_trace::{DeviceClass, Direction, TraceRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::SimConfig;
use crate::event::{EventQueue, SimMs, MS};
use crate::metrics::Metrics;
use crate::pool::Pool;

/// A finished simulation: the annotated trace plus aggregate metrics.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// Input records with `startup_latency_s` and `transfer_ms` filled in
    /// from the simulation, in completion of arrival order.
    pub records: Vec<TraceRecord>,
    /// Latency histograms and resource utilisation.
    pub metrics: Metrics,
}

/// The MSS simulator.
#[derive(Debug)]
pub struct MssSimulator {
    config: SimConfig,
}

impl MssSimulator {
    /// Creates a simulator with the given hardware configuration.
    pub fn new(config: SimConfig) -> Self {
        MssSimulator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation over a time-ordered record stream.
    ///
    /// # Panics
    ///
    /// Panics if records are not sorted by start time.
    pub fn run(&self, records: impl IntoIterator<Item = TraceRecord>) -> SimRun {
        let mut out = Vec::new();
        let metrics = self.run_streaming(records, |rec| out.push(rec));
        SimRun {
            records: out,
            metrics,
        }
    }

    /// Runs the simulation as a pipeline stage: every record is handed to
    /// `sink` in arrival order as soon as its startup latency is known,
    /// so the caller never holds the full annotated trace in memory.
    ///
    /// `run` is this with a `Vec::push` sink; sweep cells instead feed an
    /// incremental analysis accumulator. Only the in-flight window of
    /// records is buffered (requests whose first byte the simulation has
    /// not reached yet).
    ///
    /// # Panics
    ///
    /// Panics if records are not sorted by start time.
    pub fn run_streaming(
        &self,
        records: impl IntoIterator<Item = TraceRecord>,
        sink: impl FnMut(TraceRecord),
    ) -> Metrics {
        Engine::new(&self.config).run(records, sink)
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// MSCP overhead elapsed; join the device queue.
    Dispatch(usize),
    /// Media mount finished.
    MountDone(usize),
    /// Tape positioned at the file.
    SeekDone(usize),
    /// Data transfer finished.
    TransferDone(usize),
    /// Tape drive finished unloading after a request.
    DriveFree(usize),
    /// An errored request was answered at the MSCP.
    ErrorDone(usize),
}

#[derive(Debug, Clone, Copy)]
struct Req {
    arrival_ms: SimMs,
    size: u64,
    dir: Direction,
    device: DeviceClass,
    spindle: usize,
    first_byte_ms: SimMs,
}

struct Engine<'a> {
    cfg: &'a SimConfig,
    rng: SmallRng,
    queue: EventQueue<Ev>,
    reqs: Vec<Req>,
    /// Whether each request's startup latency is final (its first byte
    /// has been reached, or it errored at the MSCP).
    done: Vec<bool>,
    /// Records awaiting emission; front is request `next_emit`.
    pending: VecDeque<TraceRecord>,
    /// Next request index to hand to the sink.
    next_emit: usize,
    spindles: Vec<Pool>,
    silo: Pool,
    manual: Pool,
    robot: Pool,
    operators: Pool,
    movers: Pool,
    tape_movers: Pool,
    /// Bytes left on the mounted append cartridge, per tape class
    /// `[silo, manual]`; starts empty so the first write mounts.
    cart_remaining: [u64; 2],
    metrics: Metrics,
    first_ms: SimMs,
    last_ms: SimMs,
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a SimConfig) -> Self {
        Engine {
            cfg,
            rng: SmallRng::seed_from_u64(cfg.seed),
            queue: EventQueue::new(),
            reqs: Vec::new(),
            done: Vec::new(),
            pending: VecDeque::new(),
            next_emit: 0,
            spindles: vec![Pool::new(1); cfg.disk_spindles.max(1)],
            silo: Pool::new(cfg.silo_drives),
            manual: Pool::new(cfg.manual_drives),
            robot: Pool::new(cfg.robot_arms),
            operators: Pool::new(cfg.operators),
            movers: Pool::new(cfg.movers),
            tape_movers: Pool::new(cfg.tape_movers),
            cart_remaining: [0, 0],
            metrics: Metrics::new(),
            first_ms: SimMs::MAX,
            last_ms: SimMs::MIN,
        }
    }

    fn run(
        mut self,
        records: impl IntoIterator<Item = TraceRecord>,
        mut sink: impl FnMut(TraceRecord),
    ) -> Metrics {
        let mut prev_ms = SimMs::MIN;
        for rec in records {
            let t_ms = rec.start.as_unix() * MS;
            assert!(t_ms >= prev_ms, "records must be sorted by start time");
            prev_ms = t_ms;
            self.first_ms = self.first_ms.min(t_ms);
            // Catch the simulation up to this arrival.
            while self.queue.peek_time().is_some_and(|t| t <= t_ms) {
                let (now, ev) = self.queue.pop().expect("peeked event");
                self.handle(now, ev);
            }
            let idx = self.reqs.len();
            self.arrive(idx, &rec, t_ms);
            self.done.push(false);
            self.pending.push_back(rec);
            self.emit_finished(&mut sink);
        }
        while let Some((now, ev)) = self.queue.pop() {
            self.handle(now, ev);
        }
        self.emit_finished(&mut sink);
        debug_assert_eq!(self.next_emit, self.reqs.len());

        self.metrics.requests = self.reqs.len() as u64;
        let span = (self.first_ms, self.last_ms.max(self.first_ms));
        self.metrics.utilisation.disk_spindles = self
            .spindles
            .iter()
            .map(|p| p.utilisation(span.0, span.1))
            .sum();
        self.metrics.utilisation.silo_drives = self.silo.utilisation(span.0, span.1);
        self.metrics.utilisation.manual_drives = self.manual.utilisation(span.0, span.1);
        self.metrics.utilisation.robot_arms = self.robot.utilisation(span.0, span.1);
        self.metrics.utilisation.operators = self.operators.utilisation(span.0, span.1);
        self.metrics.utilisation.movers =
            self.movers.utilisation(span.0, span.1) + self.tape_movers.utilisation(span.0, span.1);

        self.metrics
    }

    /// Annotates and emits every record whose latency is final, in
    /// arrival order.
    fn emit_finished(&mut self, sink: &mut impl FnMut(TraceRecord)) {
        while self.next_emit < self.done.len() && self.done[self.next_emit] {
            let mut rec = self.pending.pop_front().expect("pending record");
            let req = &self.reqs[self.next_emit];
            let latency_ms = (req.first_byte_ms - req.arrival_ms).max(0);
            rec.startup_latency_s = (latency_ms / MS) as u32;
            if rec.is_ok() {
                let rate = self.rate_of(req.device);
                rec.transfer_ms = (req.size as f64 / rate * 1000.0) as u64;
            } else {
                rec.transfer_ms = 0;
            }
            sink(rec);
            self.next_emit += 1;
        }
    }

    fn arrive(&mut self, idx: usize, rec: &TraceRecord, t_ms: SimMs) {
        let device = rec.mss_device().unwrap_or(DeviceClass::Disk);
        let req = Req {
            arrival_ms: t_ms,
            size: rec.file_size,
            dir: rec.direction(),
            device,
            // Files of one directory share a 3380 volume, so a session
            // re-reading a dataset queues on one spindle — the source of
            // the paper's long disk-latency tail (§5.1).
            spindle: path_hash(
                rec.mss_path
                    .rsplit_once('/')
                    .map_or(&rec.mss_path, |(d, _)| d),
            ) as usize
                % self.spindles.len(),
            first_byte_ms: t_ms,
        };
        debug_assert_eq!(idx, self.reqs.len());
        self.reqs.push(req);
        if rec.error.is_some() {
            self.metrics.errors += 1;
            let d = self.lognormal_ms(self.cfg.error_latency_median_s, 0.5);
            self.queue.push(t_ms + d, Ev::ErrorDone(idx));
        } else {
            let d = self.lognormal_ms(
                self.cfg.mscp_overhead_median_s,
                self.cfg.mscp_overhead_sigma,
            );
            self.queue.push(t_ms + d, Ev::Dispatch(idx));
        }
    }

    fn handle(&mut self, now: SimMs, ev: Ev) {
        self.last_ms = self.last_ms.max(now);
        match ev {
            Ev::Dispatch(r) => self.join_device_queue(r, now),
            Ev::MountDone(r) => self.mount_done(r, now),
            Ev::SeekDone(r) => self.seek_done(r, now),
            Ev::TransferDone(r) => self.transfer_done(r, now),
            Ev::DriveFree(r) => self.drive_free(r, now),
            Ev::ErrorDone(r) => {
                self.reqs[r].first_byte_ms = now;
                self.done[r] = true;
            }
        }
    }

    /// Stage 2: queue on the device that holds the data.
    fn join_device_queue(&mut self, r: usize, now: SimMs) {
        let (device, dir, spindle) = {
            let req = &self.reqs[r];
            (req.device, req.dir, req.spindle)
        };
        let _ = dir;
        let granted = match device {
            DeviceClass::Disk => self.spindles[spindle].acquire(r, now),
            DeviceClass::TapeSilo => self.silo.acquire(r, now),
            DeviceClass::TapeManual => self.manual.acquire(r, now),
        };
        if granted {
            self.device_granted(r, now);
        }
    }

    /// Stage 3: with the device held, arrange the mount (if any).
    fn device_granted(&mut self, r: usize, now: SimMs) {
        let (device, dir, size) = {
            let req = &self.reqs[r];
            (req.device, req.dir, req.size)
        };
        match (device, dir) {
            (DeviceClass::Disk, _) => {
                // No mount; contend for a channel mover directly.
                if self.movers.acquire(r, now) {
                    self.mover_granted(r, now);
                }
            }
            (DeviceClass::TapeSilo, Direction::Read) => {
                if self.robot.acquire(r, now) {
                    self.robot_granted(r, now);
                }
            }
            (DeviceClass::TapeManual, Direction::Read) => {
                if self.operators.acquire(r, now) {
                    self.operator_granted(r, now);
                }
            }
            (DeviceClass::TapeSilo, Direction::Write) => {
                if self.cart_remaining[0] < size {
                    if self.robot.acquire(r, now) {
                        self.robot_granted(r, now);
                    }
                } else if self.tape_movers.acquire(r, now) {
                    self.mover_granted(r, now);
                }
            }
            (DeviceClass::TapeManual, Direction::Write) => {
                if self.cart_remaining[1] < size {
                    if self.operators.acquire(r, now) {
                        self.operator_granted(r, now);
                    }
                } else if self.tape_movers.acquire(r, now) {
                    self.mover_granted(r, now);
                }
            }
        }
    }

    fn robot_granted(&mut self, r: usize, now: SimMs) {
        let d = self.jitter_ms(self.cfg.robot_mount_s, 0.2);
        self.queue.push(now + d, Ev::MountDone(r));
    }

    fn operator_granted(&mut self, r: usize, now: SimMs) {
        let d = self.lognormal_ms(
            self.cfg.operator_mount_median_s,
            self.cfg.operator_mount_sigma,
        );
        self.queue.push(now + d, Ev::MountDone(r));
    }

    /// Stage 4: mount finished — release the mounter and seek.
    fn mount_done(&mut self, r: usize, now: SimMs) {
        let (device, dir) = {
            let req = &self.reqs[r];
            (req.device, req.dir)
        };
        // Hand the arm/operator to the next waiter.
        let next = match device {
            DeviceClass::TapeSilo => self.robot.release(now),
            DeviceClass::TapeManual => self.operators.release(now),
            DeviceClass::Disk => unreachable!("disks do not mount"),
        };
        if let Some(n) = next {
            match device {
                DeviceClass::TapeSilo => self.robot_granted(n, now),
                DeviceClass::TapeManual => self.operator_granted(n, now),
                DeviceClass::Disk => unreachable!(),
            }
        }
        match dir {
            Direction::Read => {
                // Fresh mount: land at a uniform tape position.
                let seek_s = self
                    .rng
                    .gen_range(self.cfg.tape_seek_min_s..self.cfg.tape_seek_max_s);
                self.queue
                    .push(now + (seek_s * MS as f64) as SimMs, Ev::SeekDone(r));
            }
            Direction::Write => {
                // New append cartridge: position to the start of tape.
                let slot = if device == DeviceClass::TapeSilo {
                    0
                } else {
                    1
                };
                self.cart_remaining[slot] = self.cfg.cartridge_bytes;
                let d = self.jitter_ms(3.0, 0.3);
                self.queue.push(now + d, Ev::SeekDone(r));
            }
        }
    }

    /// Stage 5 entry: positioned; wait for a bitfile mover.
    fn seek_done(&mut self, r: usize, now: SimMs) {
        if self.mover_pool(r).acquire(r, now) {
            self.mover_granted(r, now);
        }
    }

    fn mover_pool(&mut self, r: usize) -> &mut Pool {
        if self.reqs[r].device == DeviceClass::Disk {
            &mut self.movers
        } else {
            &mut self.tape_movers
        }
    }

    /// Stage 5: the transfer begins — this is "the first byte".
    fn mover_granted(&mut self, r: usize, now: SimMs) {
        let (device, dir, size, arrival) = {
            let req = &self.reqs[r];
            (req.device, req.dir, req.size, req.arrival_ms)
        };
        let setup_ms = if device == DeviceClass::Disk {
            (self.cfg.disk_seek_s * MS as f64) as SimMs
        } else {
            0
        };
        let first_byte = now + setup_ms;
        self.reqs[r].first_byte_ms = first_byte;
        // The request's startup latency is now final; transfer time is a
        // pure function of size and device, so the record can be emitted
        // even though its transfer is still in flight.
        self.done[r] = true;
        self.metrics
            .record_latency(dir, device, (first_byte - arrival) as f64 / MS as f64);
        let rate = self.rate_of(device);
        let jitter = 1.0
            + self
                .rng
                .gen_range(-self.cfg.rate_jitter..self.cfg.rate_jitter);
        let xfer_ms = (size as f64 / (rate * jitter) * 1000.0) as SimMs;
        self.queue
            .push(first_byte + xfer_ms.max(1), Ev::TransferDone(r));
        if dir == Direction::Write && device != DeviceClass::Disk {
            let slot = if device == DeviceClass::TapeSilo {
                0
            } else {
                1
            };
            self.cart_remaining[slot] = self.cart_remaining[slot].saturating_sub(size);
        }
    }

    /// Transfer complete: release the mover, then the device.
    fn transfer_done(&mut self, r: usize, now: SimMs) {
        if let Some(n) = self.mover_pool(r).release(now) {
            self.mover_granted(n, now);
        }
        let (device, spindle) = {
            let req = &self.reqs[r];
            (req.device, req.spindle)
        };
        match device {
            DeviceClass::Disk => {
                if let Some(n) = self.spindles[spindle].release(now) {
                    self.device_granted(n, now);
                }
            }
            _ => {
                // Tape drives stay busy while the cartridge unloads.
                let d = (self.cfg.tape_unload_s * MS as f64) as SimMs;
                self.queue.push(now + d, Ev::DriveFree(r));
            }
        }
    }

    /// Tape drive unloaded: pass it to the next waiter.
    fn drive_free(&mut self, r: usize, now: SimMs) {
        let device = self.reqs[r].device;
        let next = match device {
            DeviceClass::TapeSilo => self.silo.release(now),
            DeviceClass::TapeManual => self.manual.release(now),
            DeviceClass::Disk => unreachable!("disks have no unload"),
        };
        if let Some(n) = next {
            self.device_granted(n, now);
        }
    }

    fn rate_of(&self, device: DeviceClass) -> f64 {
        match device {
            DeviceClass::Disk => self.cfg.disk_rate,
            DeviceClass::TapeSilo => self.cfg.silo_rate,
            DeviceClass::TapeManual => self.cfg.manual_rate,
        }
    }

    fn lognormal_ms(&mut self, median_s: f64, sigma: f64) -> SimMs {
        let z = standard_normal(&mut self.rng);
        ((median_s * (sigma * z).exp()) * MS as f64) as SimMs
    }

    fn jitter_ms(&mut self, base_s: f64, rel: f64) -> SimMs {
        let f = 1.0 + self.rng.gen_range(-rel..rel);
        ((base_s * f) * MS as f64) as SimMs
    }
}

pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// FNV-1a hash of a path, used to pin files to disk spindles.
fn path_hash(path: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_trace::time::TRACE_EPOCH;
    use fmig_trace::{Endpoint, ErrorKind};

    fn read_at(device: Endpoint, t: i64, size: u64, path: &str) -> TraceRecord {
        TraceRecord::read(device, TRACE_EPOCH.add_secs(t), size, path, 1)
    }

    fn write_at(device: Endpoint, t: i64, size: u64, path: &str) -> TraceRecord {
        TraceRecord::write(device, TRACE_EPOCH.add_secs(t), size, path, 1)
    }

    fn sim() -> MssSimulator {
        MssSimulator::new(SimConfig::default())
    }

    #[test]
    fn empty_input_is_fine() {
        let run = sim().run(Vec::new());
        assert!(run.records.is_empty());
        assert_eq!(run.metrics.requests, 0);
    }

    #[test]
    fn lone_disk_read_is_fast() {
        let run = sim().run(vec![read_at(Endpoint::MssDisk, 0, 1_000_000, "/a/b")]);
        let rec = &run.records[0];
        // MSCP overhead plus sub-second disk work: single-digit seconds.
        assert!(
            rec.startup_latency_s < 15,
            "latency {}",
            rec.startup_latency_s
        );
        assert!(rec.transfer_ms > 0);
        assert_eq!(
            run.metrics
                .latency_of(Direction::Read, DeviceClass::Disk)
                .count(),
            1
        );
    }

    #[test]
    fn lone_silo_read_pays_mount_and_seek() {
        let run = sim().run(vec![read_at(Endpoint::MssTapeSilo, 0, 80_000_000, "/a/b")]);
        let lat = run.records[0].startup_latency_s;
        // ~7s mount + 10..90s seek + overhead.
        assert!((15..150).contains(&lat), "latency {lat}");
    }

    #[test]
    fn lone_manual_read_pays_operator_mount() {
        let run = sim().run(vec![read_at(Endpoint::MssTapeManual, 0, 80_000_000, "/a")]);
        let lat = run.records[0].startup_latency_s;
        assert!(lat >= 30, "latency {lat}");
    }

    #[test]
    fn manual_reads_are_slower_than_silo_reads_on_average() {
        let mut records = Vec::new();
        for i in 0..300 {
            records.push(read_at(Endpoint::MssTapeSilo, i * 600, 50_000_000, "/s"));
            records.push(read_at(
                Endpoint::MssTapeManual,
                i * 600 + 300,
                50_000_000,
                "/m",
            ));
        }
        records.sort_by_key(|r| r.start);
        let run = sim().run(records);
        let silo = run
            .metrics
            .latency_of(Direction::Read, DeviceClass::TapeSilo)
            .mean();
        let manual = run
            .metrics
            .latency_of(Direction::Read, DeviceClass::TapeManual)
            .mean();
        // The paper finds the silo 2-2.5x faster to the first byte.
        let ratio = manual / silo;
        assert!(ratio > 1.5, "manual {manual} vs silo {silo}");
    }

    #[test]
    fn tape_writes_append_without_remounting() {
        // First write mounts a cartridge; the rest append to it.
        let records: Vec<_> = (0..6)
            .map(|i| write_at(Endpoint::MssTapeSilo, i * 1200, 10_000_000, "/w"))
            .collect();
        let run = sim().run(records);
        let first = run.records[0].startup_latency_s;
        let rest_max = run.records[1..]
            .iter()
            .map(|r| r.startup_latency_s)
            .max()
            .unwrap();
        assert!(
            rest_max < first,
            "appends ({rest_max}s) should beat the mounting write ({first}s)"
        );
    }

    #[test]
    fn cartridge_fills_force_a_remount() {
        // 200 MB cartridge: two 90 MB writes fit, the third remounts.
        let records: Vec<_> = (0..4)
            .map(|i| write_at(Endpoint::MssTapeSilo, i * 1200, 90_000_000, "/w"))
            .collect();
        let run = sim().run(records);
        let l: Vec<u32> = run.records.iter().map(|r| r.startup_latency_s).collect();
        // Writes 1 and 3 mount (cartridge empty, then full); 2 and 4 append.
        assert!(l[1] < l[0], "append {l:?}");
        assert!(l[2] > l[1], "third write must remount: {l:?}");
        assert!(l[3] < l[2], "fourth appends again: {l:?}");
    }

    #[test]
    fn same_spindle_requests_serialize() {
        let records = vec![
            read_at(Endpoint::MssDisk, 0, 24_000_000, "/same/file"),
            read_at(Endpoint::MssDisk, 0, 24_000_000, "/same/file"),
            read_at(Endpoint::MssDisk, 0, 24_000_000, "/same/file"),
        ];
        let run = sim().run(records);
        let mut lats: Vec<u32> = run.records.iter().map(|r| r.startup_latency_s).collect();
        lats.sort_unstable();
        // 24 MB at 2.4 MB/s is 10 s of service; the third in line waits
        // for two predecessors.
        assert!(lats[2] >= lats[0] + 10, "no queueing visible: {lats:?}");
    }

    #[test]
    fn errors_resolve_quickly_without_devices() {
        let mut rec = read_at(Endpoint::MssDisk, 0, 0, "/gone");
        rec.error = Some(ErrorKind::FileNotFound);
        let run = sim().run(vec![rec]);
        assert_eq!(run.metrics.errors, 1);
        assert!(run.records[0].startup_latency_s < 30);
        assert_eq!(run.records[0].transfer_ms, 0);
        // No device histogram entry for errors.
        assert_eq!(
            run.metrics
                .latency_of(Direction::Read, DeviceClass::Disk)
                .count(),
            0
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let records: Vec<_> = (0..50)
            .map(|i| read_at(Endpoint::MssTapeSilo, i * 30, 50_000_000, "/d"))
            .collect();
        let a = sim().run(records.clone());
        let b = sim().run(records);
        let la: Vec<u32> = a.records.iter().map(|r| r.startup_latency_s).collect();
        let lb: Vec<u32> = b.records.iter().map(|r| r.startup_latency_s).collect();
        assert_eq!(la, lb);
    }

    #[test]
    #[should_panic(expected = "sorted by start time")]
    fn unsorted_input_is_rejected() {
        let records = vec![
            read_at(Endpoint::MssDisk, 100, 1, "/a"),
            read_at(Endpoint::MssDisk, 0, 1, "/b"),
        ];
        let _ = sim().run(records);
    }

    #[test]
    fn utilisation_is_positive_under_load() {
        let records: Vec<_> = (0..200)
            .map(|i| read_at(Endpoint::MssTapeSilo, i, 80_000_000, "/d"))
            .collect();
        let run = sim().run(records);
        assert!(run.metrics.utilisation.movers > 0.0);
        assert!(run.metrics.utilisation.silo_drives > 0.0);
        assert!(run.metrics.utilisation.robot_arms > 0.0);
    }

    #[test]
    fn contention_stretches_the_tail() {
        // A burst of silo reads through limited drives: the queue grows
        // and the last requests wait far longer than the first.
        let records: Vec<_> = (0..40)
            .map(|i| read_at(Endpoint::MssTapeSilo, i * 3, 80_000_000, "/d"))
            .collect();
        let run = sim().run(records);
        let h = run
            .metrics
            .latency_of(Direction::Read, DeviceClass::TapeSilo);
        assert!(
            h.quantile(0.95) > 3.0 * h.quantile(0.1),
            "p95 {} vs p10 {}",
            h.quantile(0.95),
            h.quantile(0.1)
        );
    }
}
