//! Lazy write-behind planning (§6-d).
//!
//! "An algorithm should not wait until it is absolutely necessary to free
//! up space; instead, it should write data to tape relatively quickly,
//! and then mark the file as 'deleteable'. ... A mass storage system
//! should be optimized to make read access to files faster at the cost of
//! requiring more work for writes."
//!
//! [`defer_writes`] rewrites a trace as if the MSS acknowledged writes
//! immediately and flushed them to tape during quiet night hours — each
//! write moves to the next 22:00–06:00 window (bounded by the file's next
//! read, which must still find the data on tape). Running the simulator
//! on the original and deferred traces quantifies how much read latency
//! the daytime tape-drive contention was costing.

use std::collections::HashMap;

use fmig_trace::time::{Timestamp, DAY, HOUR};
use fmig_trace::{Direction, TraceRecord};

/// Start hour of the quiet window (inclusive).
const NIGHT_START_H: i64 = 22;
/// End hour of the quiet window (exclusive, next day).
const NIGHT_END_H: i64 = 6;

/// True if the instant falls in the 22:00–06:00 flush window.
pub fn in_night_window(t: Timestamp) -> bool {
    let h = t.hour_of_day() as i64;
    !(NIGHT_END_H..NIGHT_START_H).contains(&h)
}

/// The next instant at or after `t` inside the flush window.
pub fn next_night(t: Timestamp) -> Timestamp {
    if in_night_window(t) {
        return t;
    }
    let day_start = t.as_unix().div_euclid(DAY) * DAY;
    Timestamp::from_unix(day_start + NIGHT_START_H * HOUR)
}

/// Rewrites a sorted trace so every write is flushed lazily.
///
/// Each write keeps its identity but its start time moves to the next
/// night window (plus a spreading offset), clamped so it still lands
/// before any later read of the same file. Reads and errors are
/// untouched. The result is re-sorted by start time.
pub fn defer_writes(records: &[TraceRecord]) -> Vec<TraceRecord> {
    // Pass 1 (reverse): the next read time of each path after each index.
    let mut next_read_after: Vec<Option<i64>> = vec![None; records.len()];
    let mut next_read: HashMap<&str, i64> = HashMap::new();
    for (i, rec) in records.iter().enumerate().rev() {
        next_read_after[i] = next_read.get(rec.mss_path.as_str()).copied();
        if rec.is_ok() && rec.direction() == Direction::Read {
            next_read.insert(rec.mss_path.as_str(), rec.start.as_unix());
        }
    }

    // Pass 2: move writes into the night, spreading them out within the
    // window so the flush itself does not become a convoy.
    let mut out: Vec<TraceRecord> = Vec::with_capacity(records.len());
    let mut spread: i64 = 0;
    for (i, rec) in records.iter().enumerate() {
        if !rec.is_ok() || rec.direction() != Direction::Write {
            out.push(rec.clone());
            continue;
        }
        let night = next_night(rec.start).as_unix();
        spread = (spread + 97) % (6 * HOUR);
        let mut flush = night.max(rec.start.as_unix()) + spread % (4 * HOUR);
        if let Some(read_t) = next_read_after[i] {
            flush = flush.min(read_t - 1);
        }
        flush = flush.max(rec.start.as_unix());
        let mut deferred = rec.clone();
        deferred.start = Timestamp::from_unix(flush);
        out.push(deferred);
    }
    out.sort_by_key(|r| r.start);
    out
}

/// Summary of how far writes moved.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeferralReport {
    /// Writes examined.
    pub writes: u64,
    /// Writes that moved at all.
    pub moved: u64,
    /// Mean deferral in seconds over all writes.
    pub mean_deferral_s: f64,
    /// Fraction of (deferred) writes that now start in the night window.
    pub night_fraction: f64,
}

/// Compares a trace with its deferred version.
///
/// The mean deferral is computed from aggregate start-time sums, which is
/// pairing-independent (repeat writes of one file would otherwise make
/// one-to-one matching ambiguous).
pub fn deferral_report(before: &[TraceRecord], after: &[TraceRecord]) -> DeferralReport {
    let mut before_sorted: Vec<i64> = before
        .iter()
        .filter(|r| r.is_ok() && r.direction() == Direction::Write)
        .map(|r| r.start.as_unix())
        .collect();
    before_sorted.sort_unstable();
    let mut after_sorted: Vec<i64> = Vec::with_capacity(before_sorted.len());
    let mut writes = 0u64;
    let mut night = 0u64;
    for rec in after
        .iter()
        .filter(|r| r.is_ok() && r.direction() == Direction::Write)
    {
        writes += 1;
        if in_night_window(rec.start) {
            night += 1;
        }
        after_sorted.push(rec.start.as_unix());
    }
    after_sorted.sort_unstable();
    // Rank-wise pairing: the i-th earliest write moved to the i-th
    // earliest flush (deferral preserves relative order up to spreading).
    let mut moved = 0u64;
    let mut total_defer = 0f64;
    for (orig, new) in before_sorted.iter().zip(after_sorted.iter()) {
        let d = (new - orig).max(0);
        if d > 0 {
            moved += 1;
        }
        total_defer += d as f64;
    }
    DeferralReport {
        writes,
        moved,
        mean_deferral_s: if writes == 0 {
            0.0
        } else {
            total_defer / writes as f64
        },
        night_fraction: if writes == 0 {
            0.0
        } else {
            night as f64 / writes as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_trace::time::TRACE_EPOCH;
    use fmig_trace::Endpoint;

    fn read(path: &str, t: i64) -> TraceRecord {
        TraceRecord::read(Endpoint::MssTapeSilo, TRACE_EPOCH.add_secs(t), 10, path, 1)
    }

    fn write(path: &str, t: i64) -> TraceRecord {
        TraceRecord::write(Endpoint::MssTapeSilo, TRACE_EPOCH.add_secs(t), 10, path, 1)
    }

    #[test]
    fn night_window_detection() {
        assert!(in_night_window(TRACE_EPOCH)); // midnight
        assert!(in_night_window(TRACE_EPOCH.add_secs(5 * HOUR)));
        assert!(!in_night_window(TRACE_EPOCH.add_secs(12 * HOUR)));
        assert!(in_night_window(TRACE_EPOCH.add_secs(23 * HOUR)));
        // Next night from noon is 22:00 the same day.
        let noon = TRACE_EPOCH.add_secs(12 * HOUR);
        assert_eq!(next_night(noon).hour_of_day(), 22);
        assert_eq!(next_night(noon).trace_day(), 0);
    }

    #[test]
    fn daytime_writes_move_to_night() {
        let records = vec![write("/a", 10 * HOUR), write("/b", 11 * HOUR)];
        let deferred = defer_writes(&records);
        for rec in &deferred {
            assert!(in_night_window(rec.start), "write at {}", rec.start);
            assert!(rec.start.as_unix() >= 10 * HOUR + TRACE_EPOCH.as_unix());
        }
        let report = deferral_report(&records, &deferred);
        assert_eq!(report.writes, 2);
        assert_eq!(report.moved, 2);
        assert!(report.night_fraction > 0.99);
        assert!(report.mean_deferral_s > HOUR as f64);
    }

    #[test]
    fn flush_lands_before_the_next_read() {
        // Write at 10:00, read back at 14:00: the flush cannot wait for
        // night.
        let records = vec![write("/a", 10 * HOUR), read("/a", 14 * HOUR)];
        let deferred = defer_writes(&records);
        let w = deferred
            .iter()
            .find(|r| r.direction() == Direction::Write)
            .unwrap();
        let r = deferred
            .iter()
            .find(|r| r.direction() == Direction::Read)
            .unwrap();
        assert!(w.start < r.start, "flush after the read-back");
    }

    #[test]
    fn reads_and_errors_are_untouched() {
        let mut bad = read("/gone", 9 * HOUR);
        bad.error = Some(fmig_trace::ErrorKind::FileNotFound);
        let records = vec![read("/a", 9 * HOUR), bad.clone(), write("/b", 10 * HOUR)];
        let deferred = defer_writes(&records);
        assert!(deferred
            .iter()
            .any(|r| r.mss_path == "/a" && r.start == records[0].start));
        assert!(deferred
            .iter()
            .any(|r| r.error.is_some() && r.start == bad.start));
    }

    #[test]
    fn output_is_sorted() {
        let records = vec![
            write("/a", 10 * HOUR),
            read("/x", 11 * HOUR),
            write("/b", 12 * HOUR),
            read("/y", 23 * HOUR),
        ];
        let deferred = defer_writes(&records);
        for w in deferred.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert_eq!(deferred.len(), records.len());
    }

    #[test]
    fn night_writes_stay_near_their_slot() {
        let records = vec![write("/a", 23 * HOUR)];
        let deferred = defer_writes(&records);
        // Already in the window: may spread forward but stays in-window
        // or close to it, and never moves backwards.
        assert!(deferred[0].start.as_unix() >= records[0].start.as_unix());
    }
}
