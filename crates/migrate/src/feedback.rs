//! The miss-latency feedback channel for latency-aware policies.
//!
//! Latency-aware policies ([`crate::policy::LruMad`],
//! [`crate::policy::StpLat`]) rank victims by the *delay a miss would
//! cost*, which requires an estimate of the tape recall wait each
//! resident file would pay if evicted and re-read. That estimate has
//! two sources:
//!
//! * **Closed loop** — the hierarchy engine (`fmig_sim::hierarchy`)
//!   measures every recall's first-byte wait and folds it into a
//!   [`LatencyFeedback`]: one exponentially weighted moving average per
//!   (tape tier, log2-size-class). Before each reference is classified,
//!   the engine publishes the current estimate for that file's tier and
//!   size into the cache ([`crate::cache::DiskCache::set_est_miss_wait_s`]),
//!   where it is stamped onto the touched entry and surfaces to the
//!   policy as [`crate::policy::FileView::est_miss_wait_s`].
//! * **Open loop** — no device model runs, so replay falls back to the
//!   flat [`crate::eval::EvalConfig::wait_s_per_miss`] constant (60 s,
//!   the paper's MSS average): every entry carries the same estimate.
//!   Every policy still runs — latency-aware ones simply rank with a
//!   uniform miss cost, weighting files only by their predicted waiter
//!   count and recency.
//!
//! With **zero** feedback (a fresh estimator, or an estimate pinned to
//! `0.0`) the aggregate-delay term vanishes exactly and [`LruMad`]
//! degrades to plain LRU victim order, bit for bit — a property test
//! pins this.
//!
//! [`LruMad`]: crate::policy::LruMad

use fmig_trace::DeviceClass;
use serde::{Deserialize, Serialize};

/// EWMA smoothing factor: each new recall wait moves its cell's mean
/// 20% of the way toward the observation — fast enough to track a
/// degrading drive pool within tens of recalls, slow enough not to
/// chase single-mount noise.
const EWMA_ALPHA: f64 = 0.2;

/// Number of log2 size classes per tier. Class `k` holds sizes whose
/// bit length is `k`, i.e. `[2^(k-1), 2^k)`; the last class absorbs
/// everything larger.
const SIZE_CLASSES: usize = 40;

/// One EWMA cell: the running mean and how many samples shaped it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct EwmaCell {
    mean_s: f64,
    samples: u64,
}

impl EwmaCell {
    fn record(&mut self, wait_s: f64) {
        if self.samples == 0 {
            self.mean_s = wait_s;
        } else {
            self.mean_s += EWMA_ALPHA * (wait_s - self.mean_s);
        }
        self.samples += 1;
    }
}

/// Estimated tape-recall wait, learned online from measured recalls:
/// an EWMA per (tape tier, log2-size-class) with a per-tier aggregate
/// as the cold-class fallback.
///
/// A fresh estimator returns `0.0` everywhere — the zero-feedback
/// state in which latency-aware policies degrade to their
/// latency-blind counterparts exactly. See the [module docs](self) for
/// how the closed-loop engine feeds and publishes it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyFeedback {
    /// `tiers × SIZE_CLASSES` cells, tier-major.
    cells: Vec<EwmaCell>,
    /// Per-tier aggregate EWMA: the fallback for size classes that have
    /// not seen a recall yet.
    tier_totals: Vec<EwmaCell>,
}

impl Default for LatencyFeedback {
    fn default() -> Self {
        Self::new()
    }
}

fn tier_index(tier: DeviceClass) -> usize {
    match tier {
        DeviceClass::Disk => 0,
        DeviceClass::TapeSilo => 1,
        DeviceClass::TapeManual => 2,
    }
}

fn size_class(size: u64) -> usize {
    (u64::BITS - size.leading_zeros()) as usize % SIZE_CLASSES.max(1)
}

impl LatencyFeedback {
    /// An empty estimator: every estimate is `0.0` until recalls are
    /// recorded.
    pub fn new() -> Self {
        LatencyFeedback {
            cells: vec![EwmaCell::default(); DeviceClass::ALL.len() * SIZE_CLASSES],
            tier_totals: vec![EwmaCell::default(); DeviceClass::ALL.len()],
        }
    }

    /// Folds one measured recall wait (seconds to first byte) into the
    /// estimator, keyed by the recall's tape tier and the file's size.
    pub fn record(&mut self, tier: DeviceClass, size: u64, wait_s: f64) {
        if !wait_s.is_finite() || wait_s < 0.0 {
            return;
        }
        let t = tier_index(tier);
        self.cells[t * SIZE_CLASSES + size_class(size)].record(wait_s);
        self.tier_totals[t].record(wait_s);
    }

    /// The current estimated miss wait (seconds) for a file of `size`
    /// bytes whose recall would come from `tier`.
    ///
    /// Falls back from the exact (tier, size-class) cell to the tier
    /// aggregate, and to `0.0` when the tier has never recalled — the
    /// zero-feedback state.
    pub fn estimate(&self, tier: DeviceClass, size: u64) -> f64 {
        let t = tier_index(tier);
        let cell = &self.cells[t * SIZE_CLASSES + size_class(size)];
        if cell.samples > 0 {
            return cell.mean_s;
        }
        let total = &self.tier_totals[t];
        if total.samples > 0 {
            total.mean_s
        } else {
            0.0
        }
    }

    /// Total recalls recorded across all tiers.
    pub fn samples(&self) -> u64 {
        self.tier_totals.iter().map(|c| c.samples).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_estimator_is_zero_everywhere() {
        let f = LatencyFeedback::new();
        for &tier in &DeviceClass::ALL {
            for size in [0u64, 1, 1 << 10, 1 << 30, u64::MAX] {
                assert_eq!(f.estimate(tier, size), 0.0);
            }
        }
        assert_eq!(f.samples(), 0);
    }

    #[test]
    fn first_sample_seeds_the_mean_then_ewma_tracks() {
        let mut f = LatencyFeedback::new();
        f.record(DeviceClass::TapeSilo, 1 << 20, 50.0);
        assert_eq!(f.estimate(DeviceClass::TapeSilo, 1 << 20), 50.0);
        f.record(DeviceClass::TapeSilo, 1 << 20, 150.0);
        // 50 + 0.2 * (150 - 50) = 70
        let est = f.estimate(DeviceClass::TapeSilo, 1 << 20);
        assert!((est - 70.0).abs() < 1e-9, "{est}");
    }

    #[test]
    fn size_classes_are_independent_with_tier_fallback() {
        let mut f = LatencyFeedback::new();
        f.record(DeviceClass::TapeManual, 1 << 8, 400.0);
        // Same tier, different class: falls back to the tier aggregate.
        assert_eq!(f.estimate(DeviceClass::TapeManual, 1 << 25), 400.0);
        // Different tier: still cold.
        assert_eq!(f.estimate(DeviceClass::TapeSilo, 1 << 8), 0.0);
        // Exact class wins over the aggregate once it has samples.
        f.record(DeviceClass::TapeManual, 1 << 25, 100.0);
        assert_eq!(f.estimate(DeviceClass::TapeManual, 1 << 25), 100.0);
    }

    #[test]
    fn garbage_waits_are_ignored() {
        let mut f = LatencyFeedback::new();
        f.record(DeviceClass::TapeSilo, 1024, f64::NAN);
        f.record(DeviceClass::TapeSilo, 1024, -5.0);
        f.record(DeviceClass::TapeSilo, 1024, f64::INFINITY);
        assert_eq!(f.samples(), 0);
        assert_eq!(f.estimate(DeviceClass::TapeSilo, 1024), 0.0);
    }
}
