//! Migration (eviction) policies from the paper and its predecessors.
//!
//! §2.3 and §6 discuss the policy landscape the NCAR data speaks to:
//!
//! * **STP** — Smith's space-time product: migrate the file with the
//!   largest `size × (time since last reference)^k`, `k = 1.4` in
//!   [Smith 1981]. The best practical policy in both the SLAC and
//!   Illinois studies.
//! * **LRU** — migrate the least recently used file regardless of size.
//! * **Largest/Smallest-first** — pure size orderings (Lawrie's "length"
//!   criterion).
//! * **SAAC** — Lawrie's Space-Age-Activity criterion: like STP but
//!   discounting files that remain active (high reference counts).
//! * **FIFO** and **Random** — baselines.
//! * **Belady** — the clairvoyant offline bound: evict the file whose
//!   next use is farthest in the future (files never used again first).
//!
//! A policy maps a cached file's state to an eviction priority; the cache
//! evicts highest-priority files first.

use serde::{Deserialize, Serialize};

/// State a policy may consult about one cached file.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FileView {
    /// Stable identifier of the file.
    pub id: u64,
    /// File size in bytes.
    pub size: u64,
    /// Time of the most recent reference (seconds).
    pub last_ref: i64,
    /// Time the file entered the cache (seconds).
    pub created: i64,
    /// References seen while cached.
    pub ref_count: u32,
    /// Next time this file will be used, if an oracle filled it in
    /// (offline Belady mode); `None` means "never again".
    pub next_use: Option<i64>,
}

/// An eviction policy: higher [`MigrationPolicy::priority`] leaves first.
pub trait MigrationPolicy: Send + Sync {
    /// Short display name ("STP(1.4)", "LRU", ...).
    fn name(&self) -> String;

    /// Eviction priority of `file` at time `now`; the cache evicts files
    /// in descending priority order.
    fn priority(&self, file: &FileView, now: i64) -> f64;

    /// True if the policy needs `next_use` filled in by an oracle.
    fn needs_oracle(&self) -> bool {
        false
    }
}

/// Smith's space-time product with configurable age exponent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stp {
    /// Exponent on the age term; Smith's best was 1.4 ("STP**1.4").
    pub exponent: f64,
}

impl Stp {
    /// The classic STP(1.4).
    pub fn classic() -> Self {
        Stp { exponent: 1.4 }
    }
}

impl MigrationPolicy for Stp {
    fn name(&self) -> String {
        format!("STP({:.1})", self.exponent)
    }

    fn priority(&self, file: &FileView, now: i64) -> f64 {
        let age = (now - file.last_ref).max(0) as f64;
        age.powf(self.exponent) * file.size as f64
    }
}

/// Least-recently-used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Lru;

impl MigrationPolicy for Lru {
    fn name(&self) -> String {
        "LRU".into()
    }

    fn priority(&self, file: &FileView, now: i64) -> f64 {
        (now - file.last_ref).max(0) as f64
    }
}

/// First-in-first-out by cache entry time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Fifo;

impl MigrationPolicy for Fifo {
    fn name(&self) -> String {
        "FIFO".into()
    }

    fn priority(&self, file: &FileView, now: i64) -> f64 {
        (now - file.created).max(0) as f64
    }
}

/// Migrate the largest files first (frees space fastest).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LargestFirst;

impl MigrationPolicy for LargestFirst {
    fn name(&self) -> String {
        "Largest-first".into()
    }

    fn priority(&self, file: &FileView, _now: i64) -> f64 {
        file.size as f64
    }
}

/// Migrate the smallest files first (a deliberately bad baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SmallestFirst;

impl MigrationPolicy for SmallestFirst {
    fn name(&self) -> String {
        "Smallest-first".into()
    }

    fn priority(&self, file: &FileView, _now: i64) -> f64 {
        -(file.size as f64)
    }
}

/// Lawrie's space-age-activity criterion: space-time discounted by the
/// file's observed activity, so busy files stay even when old and large.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Saac;

impl MigrationPolicy for Saac {
    fn name(&self) -> String {
        "SAAC".into()
    }

    fn priority(&self, file: &FileView, now: i64) -> f64 {
        let age = (now - file.last_ref).max(0) as f64;
        age * file.size as f64 / (1.0 + file.ref_count as f64)
    }
}

/// Uniformly random eviction (seeded, deterministic per file).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomEvict {
    /// Salt mixed into the per-file hash.
    pub salt: u64,
}

impl MigrationPolicy for RandomEvict {
    fn name(&self) -> String {
        "Random".into()
    }

    fn priority(&self, file: &FileView, now: i64) -> f64 {
        // Hash of (id, salt, coarse time) so the ordering reshuffles over
        // time but stays deterministic.
        let mut x = file.id ^ self.salt ^ ((now / 86_400) as u64).wrapping_mul(0x9E37);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        (x >> 11) as f64
    }
}

/// Belady's clairvoyant policy: evict the file used farthest in the
/// future; files never used again have infinite priority.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Belady;

impl MigrationPolicy for Belady {
    fn name(&self) -> String {
        "Belady (offline)".into()
    }

    fn priority(&self, file: &FileView, now: i64) -> f64 {
        match file.next_use {
            None => f64::INFINITY,
            Some(t) => (t - now).max(0) as f64,
        }
    }

    fn needs_oracle(&self) -> bool {
        true
    }
}

/// The standard policy suite compared in the §6 experiments.
pub fn standard_suite() -> Vec<Box<dyn MigrationPolicy>> {
    vec![
        Box::new(Stp::classic()),
        Box::new(Stp { exponent: 1.0 }),
        Box::new(Stp { exponent: 2.0 }),
        Box::new(Lru),
        Box::new(Fifo),
        Box::new(LargestFirst),
        Box::new(SmallestFirst),
        Box::new(Saac),
        Box::new(RandomEvict { salt: 0xA5A5 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(id: u64, size: u64, last_ref: i64, ref_count: u32) -> FileView {
        FileView {
            id,
            size,
            last_ref,
            created: 0,
            ref_count,
            next_use: None,
        }
    }

    #[test]
    fn stp_prefers_old_and_large() {
        let stp = Stp::classic();
        let old_large = file(1, 100 << 20, 0, 1);
        let new_large = file(2, 100 << 20, 900, 1);
        let old_small = file(3, 1 << 20, 0, 1);
        let now = 1000;
        assert!(stp.priority(&old_large, now) > stp.priority(&new_large, now));
        assert!(stp.priority(&old_large, now) > stp.priority(&old_small, now));
        assert_eq!(stp.name(), "STP(1.4)");
    }

    #[test]
    fn stp_exponent_reweights_age_versus_size() {
        // Old small file vs newer huge file: a larger exponent favours
        // evicting by age; a smaller one by size.
        let old_small = file(1, 1 << 20, 0, 1);
        let new_huge = file(2, 1 << 30, 99_000, 1);
        let now = 100_000;
        let by_age = Stp { exponent: 3.0 };
        let by_size = Stp { exponent: 0.1 };
        assert!(by_age.priority(&old_small, now) > by_age.priority(&new_huge, now));
        assert!(by_size.priority(&new_huge, now) > by_size.priority(&old_small, now));
    }

    #[test]
    fn lru_ignores_size() {
        let a = file(1, 1 << 30, 10, 1);
        let b = file(2, 1, 5, 1);
        assert!(Lru.priority(&b, 100) > Lru.priority(&a, 100));
    }

    #[test]
    fn saac_protects_active_files() {
        let idle = file(1, 10 << 20, 0, 1);
        let busy = file(2, 10 << 20, 0, 50);
        assert!(Saac.priority(&idle, 1000) > Saac.priority(&busy, 1000));
    }

    #[test]
    fn belady_evicts_never_used_first() {
        let soon = FileView {
            next_use: Some(150),
            ..file(1, 10, 0, 1)
        };
        let later = FileView {
            next_use: Some(5000),
            ..file(2, 10, 0, 1)
        };
        let never = file(3, 10, 0, 1);
        let now = 100;
        assert!(Belady.priority(&never, now) > Belady.priority(&later, now));
        assert!(Belady.priority(&later, now) > Belady.priority(&soon, now));
        assert!(Belady.needs_oracle());
        assert!(!Lru.needs_oracle());
    }

    #[test]
    fn random_is_deterministic_and_spread() {
        let p = RandomEvict { salt: 7 };
        let a = p.priority(&file(1, 10, 0, 1), 100);
        let b = p.priority(&file(1, 10, 0, 1), 100);
        assert_eq!(a, b);
        let c = p.priority(&file(2, 10, 0, 1), 100);
        assert_ne!(a, c);
    }

    #[test]
    fn suite_has_distinct_names() {
        let suite = standard_suite();
        let mut names: Vec<String> = suite.iter().map(|p| p.name()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate policy names");
        assert!(before >= 8);
    }
}
