//! Migration (eviction) policies from the paper and its predecessors.
//!
//! §2.3 and §6 discuss the policy landscape the NCAR data speaks to:
//!
//! * **STP** — Smith's space-time product: migrate the file with the
//!   largest `size × (time since last reference)^k`, `k = 1.4` in
//!   [Smith 1981]. The best practical policy in both the SLAC and
//!   Illinois studies.
//! * **LRU** — migrate the least recently used file regardless of size.
//! * **Largest/Smallest-first** — pure size orderings (Lawrie's "length"
//!   criterion).
//! * **SAAC** — Lawrie's Space-Age-Activity criterion: like STP but
//!   discounting files that remain active (high reference counts).
//! * **FIFO** and **Random** — baselines.
//! * **Belady** — the clairvoyant offline bound: evict the file whose
//!   next use is farthest in the future (files never used again first).
//!
//! Beyond the paper's suite, the workspace ships two *latency-aware*
//! policies that consume the miss-latency feedback channel
//! ([`crate::feedback`]):
//!
//! * **LRU-MAD** — aggregate-delay-aware LRU in the style of Atre et
//!   al., "Caching with Delayed Hits" (SIGCOMM 2020): protect the files
//!   whose miss would cost the most total waiting (estimated miss wait
//!   × predicted coalesced waiters) per unit of time-to-next-access.
//! * **STP-lat** — Smith's space-time product with the estimated recall
//!   wait folded in: prefer victims that are cheap to bring back.
//!
//! A policy maps a cached file's state to an eviction priority; the cache
//! evicts highest-priority files first.
//!
//! The full contract family — `priority`, the `affine` exactness
//! contract, the `kinetic` time-varying form behind the tournament
//! index, `read_touch_monotone`, `recency_keyed`, `latency_aware` —
//! is documented in `docs/policy-contract.md`.

use fmig_trace::FileId;
use serde::{Deserialize, Serialize};

/// State a policy may consult about one cached file.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FileView {
    /// Dense identifier of the file (see [`fmig_trace::FileTable`]);
    /// policy scoring never touches a hash.
    pub id: FileId,
    /// File size in bytes.
    pub size: u64,
    /// Time of the most recent reference (seconds).
    pub last_ref: i64,
    /// Time the file entered the cache (seconds).
    pub created: i64,
    /// References seen while cached.
    pub ref_count: u32,
    /// Next time this file will be used, if an oracle filled it in
    /// (offline Belady mode); `None` means "never again".
    pub next_use: Option<i64>,
    /// Estimated tape-recall wait (seconds) this file would pay if
    /// evicted and re-read — the miss-latency feedback channel.
    ///
    /// Stamped onto the entry at every touch from the cache's current
    /// hint ([`crate::cache::DiskCache::set_est_miss_wait_s`]): the
    /// closed-loop hierarchy engine publishes a live per-tier EWMA
    /// ([`crate::feedback::LatencyFeedback`]), open-loop replay the flat
    /// [`crate::eval::EvalConfig::wait_s_per_miss`] fallback, and a bare
    /// cache `0.0`. Only [`MigrationPolicy::latency_aware`] policies
    /// consult it.
    pub est_miss_wait_s: f64,
}

/// An affine description of a file's eviction priority:
/// `priority(file, now) = slope * now + intercept` for every purge time
/// `now` the cache will evaluate it at.
///
/// See [`MigrationPolicy::affine`] for the exactness contract that lets
/// the cache's incremental eviction index replace the per-purge full
/// rescan with an amortized-log heap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AffinePriority {
    /// Coefficient on `now`. Must be identical for every file the policy
    /// instance describes (a property of the *policy*, carried per file
    /// so the index can verify it): with one shared slope, pairwise
    /// priority order is independent of `now`, which is what makes an
    /// index keyed once — instead of re-ranked every purge — exact.
    pub slope: f64,
    /// The file-dependent term. `f64::INFINITY` is allowed (Belady's
    /// never-used-again class).
    pub intercept: f64,
}

/// Relative safety margin for kinetic certificates.
///
/// Pairs whose closed-form priority curves come within this *relative*
/// distance of each other are re-checked every step instead of trusted.
/// Evaluated `f64` priorities track the real-valued curve models to
/// roughly 1e-13 relative error (a handful of roundings plus one
/// `powf`), so a 1e-9 margin leaves about four orders of magnitude of
/// slack: a certificate may expire *early* (costing one extra
/// comparison), never *late* (which would corrupt the victim order).
const KINETIC_MARGIN: f64 = 1e-9;

/// A *kinetic* description of a file's eviction priority: a closed-form
/// curve in the purge time `now` that stays faithful to
/// [`MigrationPolicy::priority`] until the entry's next mutation.
///
/// Unlike [`AffinePriority`], a kinetic form is **never used to compare
/// two files** — the kinetic tournament always compares the true
/// `priority` values, so victim order is bit-identical to the rescan by
/// construction. The form's only job is *scheduling*: given two curves
/// and their current values, [`certify_order`] computes how long the
/// current comparison outcome is guaranteed to hold, so the tournament
/// re-checks a pair only when its certificate expires. A conservative
/// form costs speed, never exactness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KineticForm {
    /// `priority(t) = slope·t + intercept`, with a **per-file** slope
    /// (what [`AffinePriority`]'s shared-slope contract forbids).
    /// SAAC is the shipped example: `age·size/(1+refs)` has slope
    /// `size/(1+refs)`.
    Affine {
        /// Coefficient on `t`.
        slope: f64,
        /// Constant term.
        intercept: f64,
    },
    /// `priority(t) = coeff·(t − anchor)^exponent` for `t ≥ anchor`.
    /// STP is the shipped example: `coeff = size`, `anchor = last_ref`.
    PowerAge {
        /// Multiplier on the aged term (must be ≥ 0).
        coeff: f64,
        /// Time the age is measured from (≤ every future purge time).
        anchor: i64,
        /// Exponent on the age (must be > 0, shared per policy instance).
        exponent: f64,
    },
    /// `priority(t) = coeff·(t − anchor)^exponent
    ///              / (base + decay / max(t − created, 1))`
    /// — a power-age numerator over a denominator that *decreases*
    /// toward `base ≥ 1` as the tenure grows. STP-lat and LRU-MAD fit:
    /// their `1 + w·aggregate_delay` denominator is
    /// `1 + w·est + w·est²·refs/tenure` between touches.
    PowerAgeLat {
        /// Multiplier on the aged term (must be ≥ 0).
        coeff: f64,
        /// Time the age is measured from.
        anchor: i64,
        /// Exponent on the age (must be > 0).
        exponent: f64,
        /// Asymptotic denominator (must be ≥ 1).
        base: f64,
        /// Numerator of the vanishing denominator term (must be ≥ 0).
        decay: f64,
        /// Time the tenure is measured from.
        created: i64,
    },
    /// Constant until `until` (exclusive), then free to jump
    /// arbitrarily. RandomEvict is the shipped example: its salted hash
    /// is keyed on the `now / 86 400` day bucket, so the order is
    /// frozen inside a day and reshuffles at the boundary.
    PiecewiseConstant {
        /// First instant at which the value may change.
        until: i64,
    },
}

impl KineticForm {
    /// Bitwise parameter equality — identical bits mean the two files'
    /// priority *evaluations* are identical at every future time, so
    /// the ascending-id tie-break decides their order forever.
    ///
    /// Deliberately false for [`KineticForm::PiecewiseConstant`] (the
    /// form carries no value, so equal epochs say nothing about equal
    /// priorities) and across variants.
    fn same_bits(&self, other: &KineticForm) -> bool {
        use KineticForm::*;
        match (self, other) {
            (
                Affine {
                    slope: a,
                    intercept: b,
                },
                Affine {
                    slope: c,
                    intercept: d,
                },
            ) => a.to_bits() == c.to_bits() && b.to_bits() == d.to_bits(),
            (
                PowerAge {
                    coeff: a,
                    anchor: b,
                    exponent: c,
                },
                PowerAge {
                    coeff: d,
                    anchor: e,
                    exponent: f,
                },
            ) => a.to_bits() == d.to_bits() && b == e && c.to_bits() == f.to_bits(),
            (
                PowerAgeLat {
                    coeff: a,
                    anchor: b,
                    exponent: c,
                    base: d,
                    decay: e,
                    created: f,
                },
                PowerAgeLat {
                    coeff: g,
                    anchor: h,
                    exponent: i,
                    base: j,
                    decay: k,
                    created: l,
                },
            ) => {
                a.to_bits() == g.to_bits()
                    && b == h
                    && c.to_bits() == i.to_bits()
                    && d.to_bits() == j.to_bits()
                    && e.to_bits() == k.to_bits()
                    && f == l
            }
            _ => false,
        }
    }
}

/// First re-check instant when the pair is safe through `now + dt`
/// inclusive (real-valued `dt ≥ 0`).
fn expiry_after(now: i64, dt: f64) -> i64 {
    if dt.is_nan() {
        return now + 1;
    }
    let t = now as f64 + dt;
    if t >= i64::MAX as f64 {
        return i64::MAX;
    }
    (t.floor() as i64)
        .saturating_add(1)
        .max(now.saturating_add(1))
}

/// First re-check instant when the pair is safe strictly *before*
/// `t_cross`.
fn expiry_before(now: i64, t_cross: f64) -> i64 {
    if t_cross.is_nan() {
        return now + 1;
    }
    if t_cross >= i64::MAX as f64 {
        return i64::MAX;
    }
    (t_cross.ceil() as i64).max(now.saturating_add(1))
}

/// Certify how long `winner ≥ loser` (priority descending, ties by
/// ascending id — the rescan order) is guaranteed to keep holding.
///
/// `winner_value`/`loser_value` are the *evaluated*
/// [`MigrationPolicy::priority`] values at `now` (the exact `f64`s the
/// rescan would sort by), and the forms are the matching
/// [`MigrationPolicy::kinetic`] curves. Returns the earliest instant
/// `E > now` at which the comparison outcome could change: for every
/// integer evaluation time `t` with `now ≤ t < E`, re-evaluating both
/// priorities at `t` yields the same `total_cmp`-plus-id ordering.
///
/// Soundness is the load-bearing property — a certificate must never
/// outlive a possible order flip, while expiring early merely costs one
/// re-comparison. The solver therefore brackets every closed form with
/// the `KINETIC_MARGIN` relative fuzz (covering the ~1e-13 gap
/// between the real-valued curve model and its `f64` evaluation) and
/// answers `now + 1` whenever a pair's curves are too close, too weird
/// (NaN/∞), or of mixed variants.
///
/// The shipped closed forms:
///
/// * **Affine × Affine** — the value gap shrinks at most at rate
///   `max(loser_slope − winner_slope, 0)` while the evaluation fuzz
///   grows at most at rate `margin·max(|slope|)`; solve the linear
///   inequality for the last safe `Δt`.
/// * **PowerAge × PowerAge** (shared exponent `e`) — the loser/winner
///   ratio `(c_l/c_w)·((t−a_l)/(t−a_w))^e` is monotone in `t`, so it
///   crosses the `1 − margin` threshold at most once, at
///   `t = (a_l − k·a_w)/(1 − k)` with
///   `k = ((1−margin)·c_w/c_l)^(1/e)` — the ISSUE's closed-form
///   crossing time with the margin folded into `k`. A ratio limit
///   `c_l/c_w ≤ 1 − margin` can never reach the threshold: certificate
///   `i64::MAX`.
/// * **PowerAgeLat × PowerAgeLat** — both curves are non-decreasing
///   (numerator grows, denominator shrinks), so a flip needs the loser
///   to reach the winner's *current* value; bound the loser by its
///   envelope `c·(t−a)^e / base` and solve for the threshold time.
/// * **PiecewiseConstant × PiecewiseConstant** — both values are frozen
///   until the earlier `until`; exact, no margin.
// Negated comparisons are deliberate throughout: `!(x > 0.0)` is true
// for NaN where `x <= 0.0` is not, and every NaN must land in the
// conservative `now + 1` branch.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn certify_order(
    winner: &KineticForm,
    winner_value: f64,
    loser: &KineticForm,
    loser_value: f64,
    now: i64,
) -> i64 {
    use KineticForm::*;
    // Identical parameter bits ⇒ identical evaluations at every future
    // time ⇒ the ascending-id tie-break decides forever.
    if winner.same_bits(loser) {
        return i64::MAX;
    }
    // Epoch-frozen pairs are exact: no fuzz, no near-tie handling.
    if let (PiecewiseConstant { until: uw }, PiecewiseConstant { until: ul }) = (winner, loser) {
        return (*uw).min(*ul).max(now.saturating_add(1));
    }
    // Near-tie (or NaN/∞): within the fuzz where rounding could already
    // flip the comparison — re-check at every step.
    let d = winner_value - loser_value;
    let mag = winner_value.abs().max(loser_value.abs());
    if !d.is_finite() || !(d > KINETIC_MARGIN * mag) {
        return now + 1;
    }
    match (winner, loser) {
        (Affine { slope: mw, .. }, Affine { slope: ml, .. }) => {
            let gain = (ml - mw).max(0.0);
            let mmax = mw.abs().max(ml.abs());
            let denom = gain + KINETIC_MARGIN * mmax;
            if denom.is_nan() {
                return now + 1;
            }
            if denom == 0.0 {
                // Two constants, separated beyond the fuzz: safe forever.
                return i64::MAX;
            }
            // Safe while d − gain·Δt > margin·(mag + mmax·Δt).
            expiry_after(now, (d - KINETIC_MARGIN * mag) / denom)
        }
        (
            PowerAge {
                coeff: cw,
                anchor: aw,
                exponent: ew,
            },
            PowerAge {
                coeff: cl,
                anchor: al,
                exponent: el,
            },
        ) => {
            if ew.to_bits() != el.to_bits() || !(*ew > 0.0) || !(*cw > 0.0) || !(*cl >= 0.0) {
                return now + 1;
            }
            if *cl == 0.0 {
                // Loser is identically zero; the winner's curve is
                // non-decreasing and already above the fuzz.
                return i64::MAX;
            }
            let r_inf = cl / cw;
            if r_inf <= 1.0 - KINETIC_MARGIN {
                // The loser/winner ratio is monotone with limit r_inf
                // and is below the threshold at `now` (the near-tie
                // check); it can never reach 1 − margin.
                return i64::MAX;
            }
            // Age-ratio at the margin threshold; r_inf > 1 − margin
            // keeps k strictly below 1.
            let k = ((1.0 - KINETIC_MARGIN) / r_inf).powf(1.0 / ew);
            let t_cross = (*al as f64 - k * *aw as f64) / (1.0 - k);
            expiry_before(now, t_cross)
        }
        (
            PowerAgeLat {
                coeff: cw,
                exponent: ew,
                base: bw,
                decay: dw,
                ..
            },
            PowerAgeLat {
                coeff: cl,
                anchor: al,
                exponent: el,
                base: bl,
                decay: dl,
                ..
            },
        ) => {
            let sane = *cw >= 0.0
                && *cl >= 0.0
                && *ew > 0.0
                && *el > 0.0
                && *bw >= 1.0
                && *bl >= 1.0
                && *dw >= 0.0
                && *dl >= 0.0;
            if !sane {
                return now + 1;
            }
            if *cl == 0.0 {
                return i64::MAX;
            }
            // The winner never falls below winner_value; the loser never
            // exceeds its envelope c_l·(t−a_l)^e / b_l. Solve
            // envelope(t) = (1 − margin)·winner_value.
            let t_cross =
                *al as f64 + ((bl * (1.0 - KINETIC_MARGIN) * winner_value) / cl).powf(1.0 / el);
            expiry_before(now, t_cross)
        }
        // Mixed variants: sound, never fast. Shipped policies emit one
        // variant per instance, so this only guards hypothetical mixes.
        _ => now + 1,
    }
}

/// An eviction policy: higher [`MigrationPolicy::priority`] leaves first.
pub trait MigrationPolicy: Send + Sync {
    /// Short display name ("STP(1.4)", "LRU", ...).
    fn name(&self) -> String;

    /// Eviction priority of `file` at time `now`; the cache evicts files
    /// in descending priority order.
    fn priority(&self, file: &FileView, now: i64) -> f64;

    /// True if the policy needs `next_use` filled in by an oracle.
    fn needs_oracle(&self) -> bool {
        false
    }

    /// The priority as an affine function of `now`, when the policy has
    /// one — the hook behind the cache's incremental eviction index.
    ///
    /// # Contract
    ///
    /// Returning `Some` promises, for this exact `file` state:
    ///
    /// 1. **Shared slope.** `slope` is the same value for every file the
    ///    policy instance is asked about. Pairwise priority order then
    ///    never changes with `now`, so comparing intercepts (ties broken
    ///    by ascending id, as in the rescan) reproduces the rescan's
    ///    victim order exactly.
    /// 2. **Exact comparisons.** For any two resident files `a`, `b` and
    ///    any purge time `now` at or after both entries' last mutation,
    ///    `priority(a, now).total_cmp(&priority(b, now))` equals
    ///    `a.intercept.total_cmp(&b.intercept)` — *including ties*, since
    ///    ties fall through to the id tie-break. The shipped policies
    ///    meet this bit-for-bit because their priorities are exact
    ///    integer-valued `f64`s (timestamps and byte sizes below 2^53),
    ///    so ordering by `-last_ref`, `-created`, `±size`, or `next_use`
    ///    is the same total order as ordering by the priority value.
    /// 3. **Monotone clocks.** The form may assume reference times never
    ///    decrease (the clamp in e.g. LRU's `(now - last_ref).max(0)`
    ///    never engages for a resident entry) and that `next_use`, when
    ///    consulted, comes from a consistent oracle — both true for every
    ///    trace replay in this workspace. [`crate::cache::DiskCache`]
    ///    additionally watches the clock and falls back to the exact
    ///    rescan for good if time ever runs backwards.
    ///
    /// Policies whose priority bends with age (`STP` with exponent ≠ 1),
    /// whose slope would vary per file (`STP(1.0)`'s `size·now`, SAAC's
    /// activity discount), or whose ordering reshuffles over time
    /// (salted random) must return `None`; the cache then keeps the
    /// exact sort-based rescan, and the victim sequence is identical
    /// either way.
    fn affine(&self, _file: &FileView) -> Option<AffinePriority> {
        None
    }

    /// The priority as a *kinetic* (time-varying) closed form of `now`,
    /// when the policy has one — the hook behind the cache's kinetic
    /// tournament index, consulted only when [`MigrationPolicy::affine`]
    /// returns `None`.
    ///
    /// # Contract
    ///
    /// Returning `Some` promises, for this exact `file` state at query
    /// time `now`:
    ///
    /// 1. **Faithful curve.** For every purge time `t ≥ now` until the
    ///    entry's next mutation, `priority(file, t)` equals the form's
    ///    curve to within ~1e-13 relative error (the slack
    ///    [`certify_order`]'s margin absorbs) — and exactly for
    ///    [`KineticForm::PiecewiseConstant`], whose value must be
    ///    bit-frozen for `t < until`.
    /// 2. **Shape invariants.** The variant's parameter bounds hold
    ///    (`coeff ≥ 0`, `exponent > 0`, `base ≥ 1`, `decay ≥ 0`); the
    ///    solver's single-crossing and monotone-envelope arguments rely
    ///    on them. Parameterizations that break them (e.g. a negative
    ///    `delay_weight`) must return `None`.
    /// 3. **Homogeneous variant.** One policy instance always answers
    ///    with the same [`KineticForm`] variant; mixed pairs degrade to
    ///    per-step certificates (correct but slow).
    /// 4. **Monotone clocks**, exactly as [`MigrationPolicy::affine`]'s
    ///    clause 3.
    ///
    /// Unlike the affine hook, comparisons never go *through* the form:
    /// the tournament compares true `priority` values, so the victim
    /// sequence is bit-identical to the rescan by construction, and the
    /// form's only job is scheduling re-checks. Policies with neither an
    /// affine nor a kinetic form replay through the exact rescan.
    fn kinetic(&self, _file: &FileView, _now: i64) -> Option<KineticForm> {
        None
    }

    /// True if a *read touch* (a read hit updating `last_ref`,
    /// `ref_count`, and `next_use`) can never **raise** this policy's
    /// affine intercept.
    ///
    /// When it holds, the eviction index skips the per-hit key push
    /// entirely — the read hot path's most frequent operation — because
    /// a stale key then only ever *overestimates* a file's priority:
    /// the purge pops it, sees the mismatch with the recomputed current
    /// key, re-pushes the current one, and continues, which converges on
    /// the exact victim. LRU qualifies (recency only lowers eviction
    /// priority), as do FIFO and the size policies (read touches don't
    /// move their intercepts at all). Belady does **not**: a read hit
    /// advances `next_use` further into the future, raising the
    /// intercept, so its hits must push eagerly. Only consulted when
    /// [`MigrationPolicy::affine`] returns `Some`; the default is the
    /// safe `false`.
    fn read_touch_monotone(&self) -> bool {
        false
    }

    /// True if the policy is *pure recency*: under a monotone clock its
    /// victim order is exactly "oldest `last_ref` first, ties by
    /// ascending id" — equivalently, its affine form is slope `1`,
    /// intercept `−last_ref`, for every file.
    ///
    /// This is the strongest contract of the family and unlocks the
    /// biggest optimization: because `last_ref` is written by **every**
    /// touch in **every** cache that holds the file, the key stream is
    /// capacity-independent, and the multi-capacity replay engine
    /// ([`crate::mrc`]) ranks victims for an entire capacity grid from
    /// **one** shared append-only touch log with a cursor per capacity —
    /// no per-capacity heaps, no floating point, O(1) per reference for
    /// the whole grid. Only LRU among the shipped policies qualifies;
    /// the default is the safe `false`.
    fn recency_keyed(&self) -> bool {
        false
    }

    /// True if the policy consults [`FileView::est_miss_wait_s`] — the
    /// miss-latency feedback channel (see [`crate::feedback`]).
    ///
    /// Latency-aware policies rank victims by estimated recall cost,
    /// so their *decisions* depend on where the estimate comes from:
    /// under the closed-loop hierarchy engine the estimate is a live
    /// EWMA of measured recall waits, while open-loop replay falls back
    /// to the flat [`crate::eval::EvalConfig::wait_s_per_miss`]
    /// constant. Their closed-loop miss ratios may therefore diverge
    /// (deliberately) from open-loop replay — the exact open-loop ≡
    /// closed-loop equivalence holds only for latency-blind policies,
    /// where this returns the default `false`.
    fn latency_aware(&self) -> bool {
        false
    }
}

/// The aggregate delay a miss on `file` is predicted to cost, in
/// waiter-seconds: `estimated miss wait × predicted coalesced waiters`.
///
/// The waiter count follows the delayed-hits model (Atre et al.,
/// SIGCOMM 2020): while a recall is outstanding for `est_miss_wait_s`
/// seconds, re-references coalesce onto it instead of being served, so
/// the expected number of delayed requests is the file's observed
/// arrival rate (`ref_count` over its cache tenure) times the window —
/// plus the missing request itself. With zero feedback
/// (`est_miss_wait_s == 0`) the aggregate delay is exactly `0.0`.
pub fn aggregate_delay(file: &FileView, now: i64) -> f64 {
    let est = file.est_miss_wait_s.max(0.0);
    let tenure = (now - file.created).max(1) as f64;
    let arrival_rate = file.ref_count as f64 / tenure;
    est * (1.0 + arrival_rate * est)
}

/// Smith's space-time product with configurable age exponent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stp {
    /// Exponent on the age term; Smith's best was 1.4 ("STP**1.4").
    pub exponent: f64,
}

impl Stp {
    /// The classic STP(1.4).
    pub fn classic() -> Self {
        Stp { exponent: 1.4 }
    }
}

impl MigrationPolicy for Stp {
    fn name(&self) -> String {
        format!("STP({:.1})", self.exponent)
    }

    fn priority(&self, file: &FileView, now: i64) -> f64 {
        let age = (now - file.last_ref).max(0) as f64;
        age.powf(self.exponent) * file.size as f64
    }

    // No affine form: even at exponent 1.0 the priority is
    // `size·now − size·last_ref`, a *per-file* slope, so pairwise order
    // drifts with time (a small old file overtakes a large fresh one).

    fn kinetic(&self, file: &FileView, _now: i64) -> Option<KineticForm> {
        // `age^e · size` is exactly the PowerAge curve: for any two
        // files it crosses its rival at most once (monotone age ratio),
        // which is what lets the tournament certify pairs ahead of time.
        if !self.exponent.is_finite() || self.exponent <= 0.0 {
            return None;
        }
        Some(KineticForm::PowerAge {
            coeff: file.size as f64,
            anchor: file.last_ref,
            exponent: self.exponent,
        })
    }
}

/// Least-recently-used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Lru;

impl MigrationPolicy for Lru {
    fn name(&self) -> String {
        "LRU".into()
    }

    fn priority(&self, file: &FileView, now: i64) -> f64 {
        (now - file.last_ref).max(0) as f64
    }

    fn affine(&self, file: &FileView) -> Option<AffinePriority> {
        // (now − last_ref) as f64 is exact (both fit in 2^53), so the
        // order of priorities is the order of −last_ref at every now.
        Some(AffinePriority {
            slope: 1.0,
            intercept: -(file.last_ref as f64),
        })
    }

    fn read_touch_monotone(&self) -> bool {
        true // recency only ever lowers −last_ref
    }

    fn recency_keyed(&self) -> bool {
        true // LRU *is* the recency order
    }
}

/// First-in-first-out by cache entry time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Fifo;

impl MigrationPolicy for Fifo {
    fn name(&self) -> String {
        "FIFO".into()
    }

    fn priority(&self, file: &FileView, now: i64) -> f64 {
        (now - file.created).max(0) as f64
    }

    fn affine(&self, file: &FileView) -> Option<AffinePriority> {
        Some(AffinePriority {
            slope: 1.0,
            intercept: -(file.created as f64),
        })
    }

    fn read_touch_monotone(&self) -> bool {
        true // reads never move the entry time
    }
}

/// Migrate the largest files first (frees space fastest).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LargestFirst;

impl MigrationPolicy for LargestFirst {
    fn name(&self) -> String {
        "Largest-first".into()
    }

    fn priority(&self, file: &FileView, _now: i64) -> f64 {
        file.size as f64
    }

    fn affine(&self, file: &FileView) -> Option<AffinePriority> {
        // The intercept *is* the priority, so even the tie introduced by
        // two >2^53 sizes rounding to one f64 is reproduced exactly.
        Some(AffinePriority {
            slope: 0.0,
            intercept: file.size as f64,
        })
    }

    fn read_touch_monotone(&self) -> bool {
        true // reads never resize the entry
    }
}

/// Migrate the smallest files first (a deliberately bad baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SmallestFirst;

impl MigrationPolicy for SmallestFirst {
    fn name(&self) -> String {
        "Smallest-first".into()
    }

    fn priority(&self, file: &FileView, _now: i64) -> f64 {
        -(file.size as f64)
    }

    fn affine(&self, file: &FileView) -> Option<AffinePriority> {
        Some(AffinePriority {
            slope: 0.0,
            intercept: -(file.size as f64),
        })
    }

    fn read_touch_monotone(&self) -> bool {
        true // reads never resize the entry
    }
}

/// Lawrie's space-age-activity criterion: space-time discounted by the
/// file's observed activity, so busy files stay even when old and large.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Saac;

impl MigrationPolicy for Saac {
    fn name(&self) -> String {
        "SAAC".into()
    }

    fn priority(&self, file: &FileView, now: i64) -> f64 {
        let age = (now - file.last_ref).max(0) as f64;
        age * file.size as f64 / (1.0 + file.ref_count as f64)
    }

    // No affine form: `size/(1+refs)` is a per-file slope, violating
    // the shared-slope contract — but that makes SAAC *per-file affine*,
    // exactly what the kinetic Affine variant describes.
    fn kinetic(&self, file: &FileView, _now: i64) -> Option<KineticForm> {
        let slope = file.size as f64 / (1.0 + file.ref_count as f64);
        Some(KineticForm::Affine {
            slope,
            intercept: -(file.last_ref as f64) * slope,
        })
    }
}

/// Uniformly random eviction (seeded, deterministic per file).
///
/// **Reshuffle period: one day (86 400 s).** The priority hashes
/// `(id, salt, now / 86_400)`, so the victim order is *frozen* within a
/// day bucket and reshuffles only when the clock crosses a day
/// boundary. That makes the priority piecewise-constant in `now` —
/// [`KineticForm::PiecewiseConstant`] — so the kinetic index serves
/// purges out of cached comparisons all day and pays a rebuild-scale
/// re-certification only at the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomEvict {
    /// Salt mixed into the per-file hash.
    pub salt: u64,
}

impl MigrationPolicy for RandomEvict {
    fn name(&self) -> String {
        "Random".into()
    }

    fn priority(&self, file: &FileView, now: i64) -> f64 {
        // Hash of (id, salt, coarse time) so the ordering reshuffles over
        // time but stays deterministic.
        let mut x = u64::from(file.id) ^ self.salt ^ ((now / 86_400) as u64).wrapping_mul(0x9E37);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        (x >> 11) as f64
    }

    fn kinetic(&self, _file: &FileView, now: i64) -> Option<KineticForm> {
        // The value is bit-frozen while `now / 86_400` (truncating
        // division, as in `priority`) keeps its value. For non-negative
        // clocks the bucket ends at the next day multiple; truncation
        // makes negative buckets end one second after one.
        let k = now / 86_400;
        let until = if k < 0 {
            k.saturating_mul(86_400).saturating_add(1)
        } else {
            k.saturating_add(1).saturating_mul(86_400)
        };
        Some(KineticForm::PiecewiseConstant { until })
    }
}

/// Belady's clairvoyant policy: evict the file used farthest in the
/// future; files never used again have infinite priority.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Belady;

impl MigrationPolicy for Belady {
    fn name(&self) -> String {
        "Belady (offline)".into()
    }

    fn priority(&self, file: &FileView, now: i64) -> f64 {
        match file.next_use {
            None => f64::INFINITY,
            Some(t) => (t - now).max(0) as f64,
        }
    }

    fn needs_oracle(&self) -> bool {
        true
    }

    fn affine(&self, file: &FileView) -> Option<AffinePriority> {
        // With a consistent oracle a *resident* entry's next_use is never
        // in the past (the reference at `next_use` would have touched or
        // reinserted the entry), so the `.max(0)` clamp never engages and
        // the order of `(next_use − now)` is the order of `next_use`;
        // never-used-again files carry the same +∞ in both forms.
        Some(AffinePriority {
            slope: -1.0,
            intercept: file.next_use.map_or(f64::INFINITY, |t| t as f64),
        })
    }
}

/// Aggregate-delay-aware LRU (LRU-MAD, after Atre et al., "Caching
/// with Delayed Hits", SIGCOMM 2020): evict the file with the *least*
/// aggregate delay per unit of time-to-next-access.
///
/// LRU-MAD ranks each file by `aggregate_delay / TTNA` and keeps the
/// files where that ratio is highest. With time-to-next-access
/// estimated by recency (the LRU heuristic: a file untouched for `age`
/// seconds is expected back in about `age` seconds), "evict the
/// smallest `aggregate_delay / age`" is "evict the largest
/// `age / aggregate_delay`", so the priority here is
///
/// ```text
/// priority = age / (1 + delay_weight × aggregate_delay(file))
/// ```
///
/// — plain LRU age, deflated for files whose miss would cost real
/// waiting (see [`aggregate_delay`]). With zero latency feedback
/// (`est_miss_wait_s == 0` everywhere) the denominator is exactly
/// `1.0` and the priority is **bit-identical** to [`Lru`]'s, so the
/// victim sequence degrades to plain LRU — a property test pins this.
///
/// Declines [`MigrationPolicy::affine`]: the estimate drifts between
/// touches under live feedback, so no intercept frozen at push time can
/// meet the exact-comparison contract. It does ship a
/// [`MigrationPolicy::kinetic`] form — between touches the frozen
/// estimate makes the priority `age / (base + decay/tenure)` — so both
/// the cache and the single-pass MRC engine rank it through the kinetic
/// tournament instead of the per-purge rescan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LruMad {
    /// Weight on the aggregate-delay term, in 1/(waiter-seconds);
    /// `1.0` in [`LruMad::classic`]. Larger values protect expensive
    /// files more aggressively.
    pub delay_weight: f64,
}

impl LruMad {
    /// The reference parameterization: unit delay weight.
    pub fn classic() -> Self {
        LruMad { delay_weight: 1.0 }
    }
}

impl MigrationPolicy for LruMad {
    fn name(&self) -> String {
        "LRU-MAD".into()
    }

    fn priority(&self, file: &FileView, now: i64) -> f64 {
        let age = (now - file.last_ref).max(0) as f64;
        age / (1.0 + self.delay_weight * aggregate_delay(file, now))
    }

    fn latency_aware(&self) -> bool {
        true
    }

    // No affine form and not recency-keyed: the feedback estimate can
    // change between touches (EWMA drift), bending pairwise order in a
    // way no frozen intercept reproduces exactly.

    fn kinetic(&self, file: &FileView, _now: i64) -> Option<KineticForm> {
        // Between touches the estimate is frozen on the entry, so the
        // denominator 1 + w·aggregate_delay unrolls to
        // base + decay / tenure with base = 1 + w·est ≥ 1 and
        // decay = w·est²·refs ≥ 0 — the PowerAgeLat shape (age
        // numerator with coeff 1, exponent 1). EWMA drift re-stamps the
        // entry only through a touch, which re-issues the form.
        if !self.delay_weight.is_finite() || self.delay_weight < 0.0 {
            return None;
        }
        let est = file.est_miss_wait_s.max(0.0);
        if !est.is_finite() {
            return None;
        }
        Some(KineticForm::PowerAgeLat {
            coeff: 1.0,
            anchor: file.last_ref,
            exponent: 1.0,
            base: 1.0 + self.delay_weight * est,
            decay: self.delay_weight * est * est * file.ref_count as f64,
            created: file.created,
        })
    }
}

/// Latency-aware space-time product: Smith's STP discounted by the
/// estimated recall wait, so among equally large-and-old candidates the
/// *cheap-to-recall* one leaves first.
///
/// ```text
/// priority = age^exponent × size / (1 + delay_weight × aggregate_delay(file))
/// ```
///
/// With zero latency feedback the denominator is exactly `1.0` and the
/// policy is bit-identical to [`Stp`] at the same exponent. Declines
/// [`MigrationPolicy::affine`] for the same reasons as [`Stp`] (per-file
/// slope) and [`LruMad`] (feedback drift), but ships the
/// [`MigrationPolicy::kinetic`] PowerAgeLat form, so it ranks through
/// the kinetic tournament instead of the per-purge rescan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StpLat {
    /// Exponent on the age term, as in [`Stp`].
    pub exponent: f64,
    /// Weight on the aggregate-delay discount, as in [`LruMad`].
    pub delay_weight: f64,
}

impl StpLat {
    /// STP(1.4) with unit delay weight.
    pub fn classic() -> Self {
        StpLat {
            exponent: 1.4,
            delay_weight: 1.0,
        }
    }
}

impl MigrationPolicy for StpLat {
    fn name(&self) -> String {
        format!("STP-lat({:.1})", self.exponent)
    }

    fn priority(&self, file: &FileView, now: i64) -> f64 {
        let age = (now - file.last_ref).max(0) as f64;
        age.powf(self.exponent) * file.size as f64
            / (1.0 + self.delay_weight * aggregate_delay(file, now))
    }

    fn latency_aware(&self) -> bool {
        true
    }

    fn kinetic(&self, file: &FileView, _now: i64) -> Option<KineticForm> {
        // Same denominator unroll as LRU-MAD, with STP's power-age
        // numerator on top.
        if !self.exponent.is_finite() || self.exponent <= 0.0 {
            return None;
        }
        if !self.delay_weight.is_finite() || self.delay_weight < 0.0 {
            return None;
        }
        let est = file.est_miss_wait_s.max(0.0);
        if !est.is_finite() {
            return None;
        }
        Some(KineticForm::PowerAgeLat {
            coeff: file.size as f64,
            anchor: file.last_ref,
            exponent: self.exponent,
            base: 1.0 + self.delay_weight * est,
            decay: self.delay_weight * est * est * file.ref_count as f64,
            created: file.created,
        })
    }
}

/// The standard policy suite compared in the §6 experiments, extended
/// with the latency-aware pair (LRU-MAD, STP-lat).
pub fn standard_suite() -> Vec<Box<dyn MigrationPolicy>> {
    vec![
        Box::new(Stp::classic()),
        Box::new(Stp { exponent: 1.0 }),
        Box::new(Stp { exponent: 2.0 }),
        Box::new(Lru),
        Box::new(Fifo),
        Box::new(LargestFirst),
        Box::new(SmallestFirst),
        Box::new(Saac),
        Box::new(RandomEvict { salt: 0xA5A5 }),
        Box::new(LruMad::classic()),
        Box::new(StpLat::classic()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(id: u64, size: u64, last_ref: i64, ref_count: u32) -> FileView {
        FileView {
            id: FileId::from(id),
            size,
            last_ref,
            created: 0,
            ref_count,
            next_use: None,
            est_miss_wait_s: 0.0,
        }
    }

    #[test]
    fn stp_prefers_old_and_large() {
        let stp = Stp::classic();
        let old_large = file(1, 100 << 20, 0, 1);
        let new_large = file(2, 100 << 20, 900, 1);
        let old_small = file(3, 1 << 20, 0, 1);
        let now = 1000;
        assert!(stp.priority(&old_large, now) > stp.priority(&new_large, now));
        assert!(stp.priority(&old_large, now) > stp.priority(&old_small, now));
        assert_eq!(stp.name(), "STP(1.4)");
    }

    #[test]
    fn stp_exponent_reweights_age_versus_size() {
        // Old small file vs newer huge file: a larger exponent favours
        // evicting by age; a smaller one by size.
        let old_small = file(1, 1 << 20, 0, 1);
        let new_huge = file(2, 1 << 30, 99_000, 1);
        let now = 100_000;
        let by_age = Stp { exponent: 3.0 };
        let by_size = Stp { exponent: 0.1 };
        assert!(by_age.priority(&old_small, now) > by_age.priority(&new_huge, now));
        assert!(by_size.priority(&new_huge, now) > by_size.priority(&old_small, now));
    }

    #[test]
    fn lru_ignores_size() {
        let a = file(1, 1 << 30, 10, 1);
        let b = file(2, 1, 5, 1);
        assert!(Lru.priority(&b, 100) > Lru.priority(&a, 100));
    }

    #[test]
    fn saac_protects_active_files() {
        let idle = file(1, 10 << 20, 0, 1);
        let busy = file(2, 10 << 20, 0, 50);
        assert!(Saac.priority(&idle, 1000) > Saac.priority(&busy, 1000));
    }

    #[test]
    fn belady_evicts_never_used_first() {
        let soon = FileView {
            next_use: Some(150),
            ..file(1, 10, 0, 1)
        };
        let later = FileView {
            next_use: Some(5000),
            ..file(2, 10, 0, 1)
        };
        let never = file(3, 10, 0, 1);
        let now = 100;
        assert!(Belady.priority(&never, now) > Belady.priority(&later, now));
        assert!(Belady.priority(&later, now) > Belady.priority(&soon, now));
        assert!(Belady.needs_oracle());
        assert!(!Lru.needs_oracle());
    }

    #[test]
    fn random_is_deterministic_and_spread() {
        let p = RandomEvict { salt: 7 };
        let a = p.priority(&file(1, 10, 0, 1), 100);
        let b = p.priority(&file(1, 10, 0, 1), 100);
        assert_eq!(a, b);
        let c = p.priority(&file(2, 10, 0, 1), 100);
        assert_ne!(a, c);
    }

    /// Checks the [`MigrationPolicy::affine`] contract on a set of file
    /// states: shared slope, and intercept order == priority order
    /// (ties included) at a few probe times.
    fn assert_affine_contract(policy: &dyn MigrationPolicy, files: &[FileView]) {
        let forms: Vec<AffinePriority> = files
            .iter()
            .map(|f| policy.affine(f).expect("policy advertises an affine form"))
            .collect();
        for w in forms.windows(2) {
            assert_eq!(
                w[0].slope.total_cmp(&w[1].slope),
                std::cmp::Ordering::Equal,
                "{}: slope must be file-independent",
                policy.name()
            );
        }
        let latest = files
            .iter()
            .map(|f| f.last_ref.max(f.created))
            .max()
            .unwrap();
        for now in [latest, latest + 1, latest + 977, latest + 86_400] {
            for (a, fa) in forms.iter().zip(files) {
                for (b, fb) in forms.iter().zip(files) {
                    assert_eq!(
                        policy
                            .priority(fa, now)
                            .total_cmp(&policy.priority(fb, now)),
                        a.intercept.total_cmp(&b.intercept),
                        "{}: affine order diverges at now={now} for {} vs {}",
                        policy.name(),
                        fa.id,
                        fb.id
                    );
                }
            }
        }
    }

    #[test]
    fn affine_forms_reproduce_priority_order() {
        let mut files = vec![
            file(1, 100, 10, 1),
            file(2, 100, 10, 3), // ties LRU with id 1
            file(3, 7, 250, 9),
            file(4, 1 << 40, 0, 1),
            file(5, 1 << 40, 99, 2), // ties size policies with id 4
        ];
        files[2].created = 50;
        // Far enough out that every probe time stays before the next use
        // (the oracle-consistency the Belady affine form assumes).
        files[3].next_use = Some(1_000_000);
        files[4].next_use = Some(1_000_001);
        assert_affine_contract(&Lru, &files);
        assert_affine_contract(&Fifo, &files);
        assert_affine_contract(&LargestFirst, &files);
        assert_affine_contract(&SmallestFirst, &files);
        // Belady: oracle-consistent next_use (none in the past); two
        // never-used-again files tie at +inf in both forms.
        let mut never_a = file(6, 10, 20, 1);
        let mut never_b = file(7, 10, 30, 1);
        never_a.next_use = None;
        never_b.next_use = None;
        let mut belady_files = files.clone();
        belady_files.retain(|f| f.next_use.is_some());
        belady_files.push(never_a);
        belady_files.push(never_b);
        assert_affine_contract(&Belady, &belady_files);
    }

    #[test]
    fn read_touch_monotonicity_is_declared_correctly() {
        // A read touch updates last_ref/ref_count/next_use. The flag
        // promises the affine intercept never rises across such a touch.
        assert!(Lru.read_touch_monotone());
        assert!(Fifo.read_touch_monotone());
        assert!(LargestFirst.read_touch_monotone());
        assert!(SmallestFirst.read_touch_monotone());
        // Belady's next_use jumps forward on every hit: intercept rises.
        assert!(!Belady.read_touch_monotone());
        // Spot-check the promise for LRU: touching later only lowers it.
        let before = Lru.affine(&file(1, 10, 100, 1)).unwrap();
        let after = Lru.affine(&file(1, 10, 500, 2)).unwrap();
        assert!(after.intercept <= before.intercept);
    }

    #[test]
    fn time_bent_policies_decline_the_affine_form() {
        let f = file(1, 100, 10, 2);
        assert!(Stp::classic().affine(&f).is_none());
        assert!(Stp { exponent: 1.0 }.affine(&f).is_none());
        assert!(Saac.affine(&f).is_none());
        assert!(RandomEvict { salt: 1 }.affine(&f).is_none());
        // The latency-aware pair declines too: live feedback drifts
        // between touches, so no frozen intercept stays exact.
        assert!(LruMad::classic().affine(&f).is_none());
        assert!(StpLat::classic().affine(&f).is_none());
    }

    #[test]
    fn suite_has_distinct_names() {
        let suite = standard_suite();
        let mut names: Vec<String> = suite.iter().map(|p| p.name()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate policy names");
        assert!(before >= 10);
    }

    #[test]
    fn aggregate_delay_follows_the_delayed_hits_model() {
        // 10 references over a 100 s tenure -> 0.1 refs/s. A 20 s miss
        // wait coalesces an expected 0.1 * 20 = 2 extra waiters, so the
        // aggregate delay is 20 * (1 + 2) = 60 waiter-seconds.
        let mut f = file(1, 1 << 20, 100, 10);
        f.est_miss_wait_s = 20.0;
        let d = aggregate_delay(&f, 100);
        assert!((d - 60.0).abs() < 1e-9, "{d}");
        // Zero feedback -> exactly zero aggregate delay.
        f.est_miss_wait_s = 0.0;
        assert_eq!(aggregate_delay(&f, 100), 0.0);
        // Negative estimates are clamped, never amplified.
        f.est_miss_wait_s = -5.0;
        assert_eq!(aggregate_delay(&f, 100), 0.0);
    }

    #[test]
    fn lru_mad_protects_expensive_files() {
        let now = 1_000;
        // Same recency; the file with the costly predicted miss stays.
        let mut cheap = file(1, 1 << 20, 0, 3);
        cheap.est_miss_wait_s = 1.0;
        let mut dear = file(2, 1 << 20, 0, 3);
        dear.est_miss_wait_s = 300.0;
        let p = LruMad::classic();
        assert!(p.priority(&cheap, now) > p.priority(&dear, now));
        // But recency still matters: a fresh expensive file does not
        // shield a stale cheap one forever.
        assert!(p.latency_aware());
        assert!(!Lru.latency_aware());
    }

    #[test]
    fn zero_feedback_degrades_lru_mad_to_lru_bit_for_bit() {
        let p = LruMad::classic();
        for (last_ref, now) in [(0i64, 7i64), (5, 5), (123, 86_400), (9, 3)] {
            let f = file(1, 1 << 30, last_ref, 4);
            assert_eq!(
                p.priority(&f, now).to_bits(),
                Lru.priority(&f, now).to_bits(),
                "LRU-MAD with zero feedback must equal LRU exactly"
            );
        }
    }

    #[test]
    fn zero_feedback_degrades_stp_lat_to_stp_bit_for_bit() {
        let lat = StpLat::classic();
        let blind = Stp::classic();
        for (last_ref, now) in [(0i64, 977i64), (50, 86_400), (9, 3)] {
            let f = file(3, 123_456, last_ref, 7);
            assert_eq!(
                lat.priority(&f, now).to_bits(),
                blind.priority(&f, now).to_bits(),
                "STP-lat with zero feedback must equal STP exactly"
            );
        }
    }

    #[test]
    fn stp_lat_prefers_cheap_recalls_among_equal_stp_candidates() {
        let now = 10_000;
        let mut silo = file(1, 1 << 24, 0, 2);
        silo.est_miss_wait_s = 30.0; // robot mount
        let mut shelf = file(2, 1 << 24, 0, 2);
        shelf.est_miss_wait_s = 600.0; // operator fetch
        let p = StpLat::classic();
        assert!(
            p.priority(&silo, now) > p.priority(&shelf, now),
            "equal space-time product: the cheap-to-recall file leaves first"
        );
    }

    /// True if `w` beats `l` at `t` in rescan order (priority
    /// descending, ties by ascending id).
    fn order_holds(policy: &dyn MigrationPolicy, w: &FileView, l: &FileView, t: i64) -> bool {
        match policy.priority(w, t).total_cmp(&policy.priority(l, t)) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => w.id < l.id,
        }
    }

    /// Checks [`certify_order`] soundness for one pair at one probe
    /// time: the certified winner must keep winning at every sampled
    /// instant strictly before the expiry. Returns the expiry.
    fn check_certified_pair(
        policy: &dyn MigrationPolicy,
        a: &FileView,
        b: &FileView,
        now: i64,
    ) -> i64 {
        let (w, l) = if order_holds(policy, a, b, now) {
            (a, b)
        } else {
            (b, a)
        };
        let fw = policy
            .kinetic(w, now)
            .expect("policy advertises a kinetic form");
        let fl = policy.kinetic(l, now).unwrap();
        let e = certify_order(
            &fw,
            policy.priority(w, now),
            &fl,
            policy.priority(l, now),
            now,
        );
        assert!(e > now, "{}: expiry must be in the future", policy.name());
        // Dense probes near `now`, geometric probes toward the expiry,
        // and the last instant the certificate still covers.
        let mut probes: Vec<i64> = (now..(now + 512).min(e)).collect();
        let mut step = 512i64;
        while step < 1 << 40 && now.saturating_add(step) < e {
            probes.push(now + step);
            probes.push((now + step).min(e - 1));
            step *= 2;
        }
        if e < i64::MAX {
            probes.push(e - 1);
        }
        for t in probes {
            assert!(
                order_holds(policy, w, l, t),
                "{}: certified order flipped at t={t} (now={now}, expiry={e}, {} vs {})",
                policy.name(),
                w.id,
                l.id
            );
        }
        e
    }

    fn assert_kinetic_contract(policy: &dyn MigrationPolicy, files: &[FileView]) {
        let latest = files
            .iter()
            .map(|f| f.last_ref.max(f.created))
            .max()
            .unwrap();
        // Probe right after the last touch, mid-interval, and just
        // before a day boundary (RandomEvict's reshuffle point).
        for now in [latest, latest + 13, 86_399.max(latest)] {
            for (i, a) in files.iter().enumerate() {
                for b in files.iter().skip(i + 1) {
                    check_certified_pair(policy, a, b, now);
                }
            }
        }
    }

    #[test]
    fn kinetic_certificates_never_outlive_an_order_flip() {
        let mut files = vec![
            file(1, 100, 10, 1),
            file(2, 100, 10, 3),
            file(3, 7, 250, 9),
            file(4, 1 << 40, 0, 1),
            file(5, 1 << 40, 99, 2),
            file(6, 1, 299, 1),  // tiny and fresh: crossing-heavy vs 4/5
            file(7, 100, 10, 1), // same state as id 1: permanent tie
        ];
        files[2].created = 50;
        for f in &mut files {
            f.est_miss_wait_s = 7.5;
        }
        files[3].est_miss_wait_s = 600.0;
        assert_kinetic_contract(&Stp::classic(), &files);
        assert_kinetic_contract(&Stp { exponent: 1.0 }, &files);
        assert_kinetic_contract(&Stp { exponent: 2.0 }, &files);
        assert_kinetic_contract(&Saac, &files);
        assert_kinetic_contract(&RandomEvict { salt: 0xA5A5 }, &files);
        assert_kinetic_contract(&LruMad::classic(), &files);
        assert_kinetic_contract(&StpLat::classic(), &files);
    }

    #[test]
    fn identical_states_certify_forever() {
        // Same (size, last_ref) ⇒ bit-identical forms ⇒ the id
        // tie-break is permanent.
        let a = file(1, 100, 10, 1);
        let b = file(2, 100, 10, 1);
        let p = Stp::classic();
        let e = check_certified_pair(&p, &a, &b, 500);
        assert_eq!(e, i64::MAX);
    }

    #[test]
    fn near_ties_stay_hot() {
        // Stp(1.0): 200·age vs 100·2·age — equal values, different
        // forms. The solver must re-check every step.
        let p = Stp { exponent: 1.0 };
        let a = file(1, 200, 100, 1);
        let b = file(2, 100, 0, 1);
        let now = 200; // ages 100 and 200: both priorities 20_000
        assert_eq!(p.priority(&a, now).to_bits(), p.priority(&b, now).to_bits());
        let e = check_certified_pair(&p, &a, &b, now);
        assert_eq!(e, now + 1);
    }

    #[test]
    fn random_evict_certificates_end_at_the_day_boundary() {
        let p = RandomEvict { salt: 7 };
        let a = file(1, 10, 0, 1);
        let b = file(2, 10, 0, 1);
        let e = check_certified_pair(&p, &a, &b, 100);
        assert_eq!(e, 86_400, "frozen exactly until the next day bucket");
        let e = check_certified_pair(&p, &a, &b, 86_399);
        assert_eq!(e, 86_400);
        let e = check_certified_pair(&p, &a, &b, 86_400);
        assert_eq!(e, 2 * 86_400);
    }

    #[test]
    fn stp_certificates_are_not_vacuously_short() {
        // A well-separated pair must certify past now + 1, or the
        // tournament degenerates into a per-step rescan.
        let p = Stp::classic();
        let old_large = file(1, 1 << 30, 0, 1);
        let fresh_small = file(2, 1 << 10, 990, 1);
        let e = check_certified_pair(&p, &old_large, &fresh_small, 1000);
        assert!(e > 1_010, "expiry {e} too conservative");
    }

    #[test]
    fn stp_crossing_expires_the_certificate_in_time() {
        // Old tiny winner vs a just-touched huge loser: the loser
        // overtakes at t ≈ 1005.005 (the closed-form crossing), so the
        // certificate must expire by 1006 — and the order really flips
        // there.
        let p = Stp { exponent: 1.0 };
        let old_tiny = file(1, 1, 0, 1);
        let fresh_huge = file(2, 1000, 1004, 1);
        let now = 1005;
        assert!(order_holds(&p, &old_tiny, &fresh_huge, now));
        let e = check_certified_pair(&p, &old_tiny, &fresh_huge, now);
        assert_eq!(e, 1006);
        assert!(
            order_holds(&p, &fresh_huge, &old_tiny, e),
            "the loser overtakes right at the certified expiry"
        );
    }

    #[test]
    fn kinetic_policies_ship_exactly_one_variant() {
        let f = file(1, 100, 10, 2);
        let g = file(2, 1 << 30, 500, 9);
        for (p, want_affine) in [
            (&Stp::classic() as &dyn MigrationPolicy, false),
            (&Saac, true),
            (&RandomEvict { salt: 1 }, false),
            (&LruMad::classic(), false),
            (&StpLat::classic(), false),
        ] {
            let (ka, kb) = (p.kinetic(&f, 10).unwrap(), p.kinetic(&g, 500).unwrap());
            assert_eq!(
                std::mem::discriminant(&ka),
                std::mem::discriminant(&kb),
                "{}: one instance, one variant",
                p.name()
            );
            assert_eq!(
                matches!(ka, KineticForm::Affine { .. }),
                want_affine,
                "{}",
                p.name()
            );
            // Kinetic is the fallback tier: these all decline affine.
            assert!(p.affine(&f).is_none());
        }
        // And the affine tier does not need the kinetic hook.
        assert!(Lru.kinetic(&f, 10).is_none());
        assert!(Belady.kinetic(&f, 10).is_none());
    }
}
