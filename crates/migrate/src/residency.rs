//! The MSS-internal migration study: residency windows (§3.1, §6).
//!
//! NCAR's MSS runs **two** migration mechanisms: the manual Cray↔MSS
//! movement the trace records, and an internal one "relocating files on
//! different media within the MSS". The internal policy is a pair of
//! residency windows:
//!
//! * a small file stays on MSS *disk* while referenced within the disk
//!   residency window, then migrates to tape;
//! * a cartridge stays in the *silo* while its data is referenced within
//!   the silo residency window, then goes to the shelf.
//!
//! This module replays a trace under arbitrary window settings and
//! reports where reads would have been served and what the mean response
//! time would have been — the knob the paper's §6 discussion (and our
//! workload generator's placement pass) turns.

use fmig_trace::time::DAY;
use fmig_trace::{DeviceClass, Direction, FileTable, TraceRecord};
use serde::{Deserialize, Serialize};

use crate::dividing::DeviceModel;

/// Residency-window settings under study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResidencyPolicy {
    /// Days a small file stays disk-resident after its last reference.
    pub disk_days: f64,
    /// Days a cartridge stays in the silo after its last reference.
    pub silo_days: f64,
    /// Placement threshold: files at or above this size never live on
    /// disk (NCAR: 30 MB).
    pub tape_threshold: u64,
}

impl ResidencyPolicy {
    /// NCAR-like defaults.
    pub fn ncar() -> Self {
        ResidencyPolicy {
            disk_days: 60.0,
            silo_days: 70.0,
            tape_threshold: 30_000_000,
        }
    }
}

/// Outcome of replaying a trace under one residency policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResidencyOutcome {
    /// Reads served per device `[disk, silo, shelf]`.
    pub reads_by_device: [u64; 3],
    /// Mean response time per read, from the queue-free device models.
    pub mean_response_s: f64,
    /// Peak bytes simultaneously disk-resident (the staging requirement).
    pub peak_disk_bytes: u64,
}

impl ResidencyOutcome {
    /// Total reads replayed.
    pub fn reads(&self) -> u64 {
        self.reads_by_device.iter().sum()
    }

    /// Fraction of reads served by one device.
    pub fn share(&self, device: DeviceClass) -> f64 {
        let total = self.reads().max(1) as f64;
        let idx = match device {
            DeviceClass::Disk => 0,
            DeviceClass::TapeSilo => 1,
            DeviceClass::TapeManual => 2,
        };
        self.reads_by_device[idx] as f64 / total
    }
}

/// Device response models used to cost a placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResidencyCostModel {
    /// MSS staging disk.
    pub disk: DeviceModel,
    /// Robot-mounted silo tape.
    pub silo: DeviceModel,
    /// Operator-mounted shelf tape.
    pub shelf: DeviceModel,
}

impl ResidencyCostModel {
    /// Queue-free NCAR devices (§5.1.1 deductions).
    pub fn ncar() -> Self {
        ResidencyCostModel {
            disk: DeviceModel {
                overhead_s: 0.5,
                rate_bps: 2.4e6,
            },
            silo: DeviceModel {
                overhead_s: 60.0,
                rate_bps: 2.2e6,
            },
            shelf: DeviceModel {
                overhead_s: 165.0,
                rate_bps: 2.0e6,
            },
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct FileState {
    last_ref: i64,
    size: u64,
    disk_resident: bool,
}

/// Replays a trace under a residency policy.
///
/// The replay mirrors the generator's placement pass: writes land on
/// disk (small) or silo (large); a read's serving device follows from
/// the file's age since last reference versus the windows. Peak disk
/// bytes are tracked by expiring residents lazily.
///
/// Paths are interned through a [`FileTable`]; per-file state lives in
/// a dense arena indexed by the resulting id, so the per-record cost is
/// one interner probe plus an array load — the hash of the full path
/// string happens once per (path, record), never per state access, and
/// the daily expiry sweep is a linear walk of a flat `Vec`.
pub fn replay<'a>(
    records: impl IntoIterator<Item = &'a TraceRecord>,
    policy: ResidencyPolicy,
    cost: &ResidencyCostModel,
) -> ResidencyOutcome {
    let disk_window = (policy.disk_days * DAY as f64) as i64;
    let silo_window = (policy.silo_days * DAY as f64) as i64;
    let mut table = FileTable::new();
    // Arena in id order: `table` assigns ids densely, so the state of
    // file `id` lives at `files[id.index()]`, pushed at intern time.
    let mut files: Vec<FileState> = Vec::new();
    let mut outcome = ResidencyOutcome::default();
    let mut response_sum = 0.0;
    let mut disk_bytes = 0u64;
    let mut last_sweep = i64::MIN / 4;

    for rec in records {
        if !rec.is_ok() {
            continue;
        }
        let t = rec.start.as_unix();
        // Lazily expire disk residents once a simulated day.
        if t - last_sweep > DAY {
            for f in &mut files {
                if f.disk_resident && t - f.last_ref > disk_window {
                    disk_bytes = disk_bytes.saturating_sub(f.size);
                    f.disk_resident = false;
                }
            }
            last_sweep = t;
        }
        let small = rec.file_size < policy.tape_threshold;
        match rec.direction() {
            Direction::Write => {
                let id = table.intern(rec.mss_path.as_str());
                if id.index() == files.len() {
                    files.push(FileState {
                        last_ref: t,
                        size: rec.file_size,
                        disk_resident: false,
                    });
                }
                let entry = &mut files[id.index()];
                if small && !entry.disk_resident {
                    entry.disk_resident = true;
                    disk_bytes += rec.file_size;
                } else if small {
                    disk_bytes = disk_bytes - entry.size + rec.file_size;
                }
                entry.size = rec.file_size;
                entry.last_ref = t;
                outcome.peak_disk_bytes = outcome.peak_disk_bytes.max(disk_bytes);
            }
            Direction::Read => {
                let age = table
                    .get(rec.mss_path.as_str())
                    .map_or(i64::MAX / 4, |id| t - files[id.index()].last_ref);
                let device = if small {
                    if age <= disk_window {
                        DeviceClass::Disk
                    } else if age <= silo_window {
                        DeviceClass::TapeSilo
                    } else {
                        DeviceClass::TapeManual
                    }
                } else if age <= silo_window {
                    DeviceClass::TapeSilo
                } else {
                    DeviceClass::TapeManual
                };
                let (idx, model) = match device {
                    DeviceClass::Disk => (0, &cost.disk),
                    DeviceClass::TapeSilo => (1, &cost.silo),
                    DeviceClass::TapeManual => (2, &cost.shelf),
                };
                outcome.reads_by_device[idx] += 1;
                response_sum += model.access_s(rec.file_size);
                // A read re-stages small files to disk.
                let id = table.intern(rec.mss_path.as_str());
                if id.index() == files.len() {
                    files.push(FileState {
                        last_ref: t,
                        size: rec.file_size,
                        disk_resident: false,
                    });
                }
                let entry = &mut files[id.index()];
                if small && !entry.disk_resident {
                    entry.disk_resident = true;
                    disk_bytes += entry.size;
                }
                entry.last_ref = t;
                outcome.peak_disk_bytes = outcome.peak_disk_bytes.max(disk_bytes);
            }
        }
    }
    if outcome.reads() > 0 {
        outcome.mean_response_s = response_sum / outcome.reads() as f64;
    }
    outcome
}

/// Sweeps disk-residency windows (silo window scaled alongside) and
/// reports the response/staging trade-off.
pub fn window_sweep(
    records: &[TraceRecord],
    disk_days: &[f64],
    cost: &ResidencyCostModel,
) -> Vec<(f64, ResidencyOutcome)> {
    disk_days
        .iter()
        .map(|&d| {
            let policy = ResidencyPolicy {
                disk_days: d,
                silo_days: d * 1.2 + 10.0,
                ..ResidencyPolicy::ncar()
            };
            (d, replay(records.iter(), policy, cost))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_trace::time::TRACE_EPOCH;
    use fmig_trace::Endpoint;

    fn read(path: &str, day: i64, size: u64) -> TraceRecord {
        TraceRecord::read(
            Endpoint::MssDisk,
            TRACE_EPOCH.add_secs(day * DAY + 3600),
            size,
            path,
            1,
        )
    }

    fn write(path: &str, day: i64, size: u64) -> TraceRecord {
        TraceRecord::write(
            Endpoint::MssDisk,
            TRACE_EPOCH.add_secs(day * DAY),
            size,
            path,
            1,
        )
    }

    #[test]
    fn fresh_small_files_read_from_disk() {
        let records = [write("/a", 0, 1_000_000), read("/a", 1, 1_000_000)];
        let out = replay(
            records.iter(),
            ResidencyPolicy::ncar(),
            &ResidencyCostModel::ncar(),
        );
        assert_eq!(out.reads_by_device, [1, 0, 0]);
        assert!(
            out.mean_response_s < 2.0,
            "disk read {}",
            out.mean_response_s
        );
    }

    #[test]
    fn aging_moves_reads_down_the_hierarchy() {
        let policy = ResidencyPolicy {
            disk_days: 10.0,
            silo_days: 50.0,
            tape_threshold: 30_000_000,
        };
        let cost = ResidencyCostModel::ncar();
        // Read 5 days after write: disk. 30 days: silo. 200 days: shelf.
        for (gap, expect) in [(5, 0usize), (30, 1), (200, 2)] {
            let records = [write("/a", 0, 1_000_000), read("/a", gap, 1_000_000)];
            let out = replay(records.iter(), policy, &cost);
            let mut expected = [0u64; 3];
            expected[expect] = 1;
            assert_eq!(out.reads_by_device, expected, "gap {gap} days");
        }
    }

    #[test]
    fn large_files_never_read_from_disk() {
        let records = [write("/big", 0, 90_000_000), read("/big", 1, 90_000_000)];
        let out = replay(
            records.iter(),
            ResidencyPolicy::ncar(),
            &ResidencyCostModel::ncar(),
        );
        assert_eq!(out.reads_by_device, [0, 1, 0]);
    }

    #[test]
    fn unknown_files_come_from_the_shelf() {
        // Never written during the trace: it pre-dates the window.
        let records = [read("/ancient", 10, 1_000_000)];
        let out = replay(
            records.iter(),
            ResidencyPolicy::ncar(),
            &ResidencyCostModel::ncar(),
        );
        assert_eq!(out.reads_by_device, [0, 0, 1]);
    }

    #[test]
    fn peak_disk_bytes_tracks_the_resident_set() {
        let policy = ResidencyPolicy {
            disk_days: 5.0,
            silo_days: 50.0,
            tape_threshold: 30_000_000,
        };
        let mut records = Vec::new();
        // Ten 1 MB files written on day 0, then one more on day 30 after
        // the first ten expired.
        for i in 0..10 {
            records.push(write(&format!("/f{i}"), 0, 1_000_000));
        }
        records.push(write("/late", 30, 1_000_000));
        let out = replay(records.iter(), policy, &ResidencyCostModel::ncar());
        assert_eq!(out.peak_disk_bytes, 10_000_000);
    }

    #[test]
    fn longer_windows_shift_reads_up_and_raise_staging_needs() {
        // A workload with re-reads at many ages.
        let mut records = Vec::new();
        for i in 0..40 {
            records.push(write(&format!("/f{i}"), i, 2_000_000));
            records.push(read(&format!("/f{i}"), i + 3, 2_000_000));
            records.push(read(&format!("/f{i}"), i + 45, 2_000_000));
            records.push(read(&format!("/f{i}"), i + 300, 2_000_000));
        }
        records.sort_by_key(|r| r.start);
        let sweep = window_sweep(&records, &[1.0, 30.0, 120.0], &ResidencyCostModel::ncar());
        for w in sweep.windows(2) {
            let (_, a) = &w[0];
            let (_, b) = &w[1];
            assert!(
                b.share(DeviceClass::Disk) >= a.share(DeviceClass::Disk),
                "disk share must grow with the window"
            );
            assert!(
                b.mean_response_s <= a.mean_response_s + 1e-9,
                "response must improve with the window"
            );
            assert!(b.peak_disk_bytes >= a.peak_disk_bytes);
        }
    }
}
