//! Policy-comparison harness (the Smith/Lawrie experiment rerun on
//! NCAR-like traces, §2.3 / §6-a).
//!
//! Each candidate policy drives a [`DiskCache`] over the same trace; the
//! harness reports miss ratios, byte miss ratios, and the §2.3
//! person-minutes cost. A reversed pre-pass computes every reference's
//! next-use time so Belady's clairvoyant bound runs as an ordinary
//! policy. Policies are evaluated on worker threads (one per policy).
//!
//! Replay cost per reference is sub-linear in the resident set for
//! every shipped policy: affine policies rank through the incremental
//! eviction index, time-varying ones (STP/SAAC/RandomEvict and the
//! latency-aware pair) through the kinetic tournament, and only the
//! explicit [`crate::cache::EvictionMode::Rescan`] oracle mode — or a
//! degraded index — pays the O(n) purge rescan.

use fmig_trace::time::TRACE_DAYS;
use fmig_trace::{DeviceClass, Direction, FileId, FileTable, TraceRecord};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::cache::{CacheConfig, CacheStats, DiskCache};
use crate::policy::MigrationPolicy;

/// Configuration of one comparison run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// The disk-cache geometry shared by all policies.
    pub cache: CacheConfig,
    /// Mean tape wait charged per read miss (seconds) for the
    /// person-minutes metric; the paper's MSS averages ~60 s.
    ///
    /// This constant is the *open-loop fallback*: a latency-true
    /// (closed-loop) run measures each policy's actual mean read-miss
    /// wait from the device model and
    /// [`PolicyOutcome::attach_latency`] replaces the charge with that
    /// measurement. Only open-loop evaluations — where no device model
    /// runs — fall back to this number.
    pub wait_s_per_miss: f64,
    /// Trace length in days for per-day normalisation.
    pub trace_days: f64,
}

impl EvalConfig {
    /// A run with the given cache capacity and paper-like defaults.
    pub fn with_capacity(capacity: u64) -> Self {
        EvalConfig {
            cache: CacheConfig::with_capacity(capacity),
            wait_s_per_miss: 60.0,
            trace_days: TRACE_DAYS as f64,
        }
    }
}

/// Latency-true summary of one policy's closed-loop run: first-byte
/// waits measured by the device model instead of charged as constants.
///
/// Produced by the closed-loop hierarchy engine (`fmig-sim`); kept here
/// so [`PolicyOutcome`] can carry it without this crate depending on the
/// simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyOutcome {
    /// Mean first-byte wait over all reads (hits, delayed hits, and
    /// misses), seconds.
    pub mean_read_wait_s: f64,
    /// 99th-percentile first-byte read wait, seconds.
    pub p99_read_wait_s: f64,
    /// Mean wait of read misses (tape recalls), seconds.
    pub mean_miss_wait_s: f64,
    /// Mean wait of reads that coalesced onto an outstanding recall,
    /// seconds.
    pub mean_delayed_wait_s: f64,
    /// Reads that coalesced onto an outstanding recall (delayed hits).
    pub delayed_hits: u64,
    /// Tape recalls actually issued (misses minus coalesced refetches).
    pub recalls: u64,
    /// Bytes of write-behind and eviction flushes sent to tape.
    pub flush_bytes: u64,
    /// Mean time a tape flush waited for a drive, seconds — the
    /// write-back contention the closed loop exposes.
    pub mean_flush_queue_s: f64,
    /// Degraded-mode counters from a fault-injected closed-loop run;
    /// `None` when the run carried no fault plan. The wait fields above
    /// already reflect the faults (retries lengthen miss waits, outages
    /// lengthen queues) — this object attributes the damage.
    pub degraded: Option<DegradedOutcome>,
}

/// What a fault plan did to one closed-loop run (see
/// `fmig_sim::fault`): the attribution half of a degraded-mode
/// measurement, carried next to the wait distributions it explains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DegradedOutcome {
    /// Tape recall attempts that failed (media read errors) and were
    /// re-queued with backoff.
    pub read_retries: u64,
    /// Outage windows that actually parked a unit (drive, robot arm, or
    /// operator) for part of the run.
    pub outage_events: u64,
    /// Total queue wait that overlapped an outage window of the
    /// waiting job's resource, seconds — wait attributable to parked
    /// hardware rather than ordinary contention.
    pub outage_wait_s: f64,
    /// Tape transfers that ran at a degraded (slow-drive) rate.
    pub slow_transfers: u64,
}

/// The result of one policy's run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Policy display name.
    pub name: String,
    /// Raw cache counters.
    pub stats: CacheStats,
    /// Read miss ratio by references.
    pub miss_ratio: f64,
    /// Read miss ratio by bytes.
    pub byte_miss_ratio: f64,
    /// §2.3 person-minutes lost per day. Charged at
    /// [`EvalConfig::wait_s_per_miss`] in open-loop mode; derived from
    /// the measured mean miss wait once a latency-true run is attached.
    pub person_minutes_per_day: f64,
    /// Measured first-byte latency distributions, when this outcome came
    /// from (or was augmented by) a closed-loop run; `None` in open-loop
    /// mode.
    pub latency: Option<LatencyOutcome>,
}

impl PolicyOutcome {
    /// Attaches a latency-true measurement and re-derives the
    /// person-minutes cost from the measured mean read-miss wait,
    /// superseding the open-loop `wait_s_per_miss` constant.
    pub fn attach_latency(&mut self, latency: LatencyOutcome, config: &EvalConfig) {
        self.person_minutes_per_day = self
            .stats
            .person_minutes_per_day(latency.mean_miss_wait_s, config.trace_days);
        self.latency = Some(latency);
    }

    /// The per-miss wait in effect: measured when latency-true, the
    /// configured constant otherwise.
    pub fn wait_s_per_miss(&self, config: &EvalConfig) -> f64 {
        self.latency
            .map_or(config.wait_s_per_miss, |l| l.mean_miss_wait_s)
    }
}

/// One reference prepared for replay, in trace order.
///
/// Public so the closed-loop hierarchy engine (`fmig-sim`) can replay
/// the exact reference sequence open-loop evaluation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreparedRef {
    /// Dense file id interned from the MSS path (see
    /// [`fmig_trace::FileTable`]); also the arena index for every
    /// per-file slot downstream.
    pub id: FileId,
    /// File size in bytes (at least 1).
    pub size: u64,
    /// True for writes.
    pub write: bool,
    /// Reference time, seconds since the Unix epoch.
    pub time: i64,
    /// Next reference to the same file, for Belady's oracle.
    pub next_use: Option<i64>,
    /// Storage class the original record was served from; closed-loop
    /// replay recalls misses from the matching tape tier.
    pub device: DeviceClass,
}

/// Incremental trace preparation: feed records one at a time (straight
/// off a generator or the simulator's streaming sink, no `Vec` of
/// records needed), then [`TracePrep::finish`] into a [`PreparedTrace`].
///
/// Paths are interned to dense [`FileId`]s through one shared
/// [`FileTable`] as they arrive; the Belady next-use oracle is a reverse
/// sweep, so it runs once at `finish`. The per-record state kept here is
/// a compact `Copy` struct plus one owned path string per *unique* file
/// — far lighter than the records themselves.
#[derive(Debug, Default)]
pub struct TracePrep {
    table: FileTable,
    refs: Vec<PreparedRef>,
}

impl TracePrep {
    /// Creates an empty preparation pass.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one record; errored references are skipped, as in §6.
    pub fn observe(&mut self, rec: &TraceRecord) {
        if rec.error.is_some() {
            return;
        }
        let id = self.table.intern(rec.mss_path.as_str());
        self.refs.push(PreparedRef {
            id,
            size: rec.file_size.max(1),
            write: rec.direction() == Direction::Write,
            time: rec.start.as_unix(),
            next_use: None,
            device: rec.mss_device().unwrap_or(DeviceClass::Disk),
        });
    }

    /// Runs the reverse next-use sweep and seals the trace for replay.
    ///
    /// Because ids are dense, the sweep's "latest time seen per file"
    /// state is a flat `Vec<i64>` indexed by [`FileId`], not a hash map.
    pub fn finish(self) -> PreparedTrace {
        let mut refs = self.refs;
        // Trace times are non-negative Unix seconds, so MIN is free as
        // the "not seen yet" sentinel.
        let mut next_seen = vec![i64::MIN; self.table.len()];
        for r in refs.iter_mut().rev() {
            let slot = &mut next_seen[r.id.index()];
            r.next_use = (*slot != i64::MIN).then_some(*slot);
            *slot = r.time;
        }
        PreparedTrace {
            refs,
            file_count: self.table.len(),
            table: self.table,
        }
    }
}

/// A trace ready for policy replay; see [`TracePrep`].
#[derive(Debug, Clone)]
pub struct PreparedTrace {
    refs: Vec<PreparedRef>,
    table: FileTable,
    file_count: usize,
}

impl PreparedTrace {
    /// Number of successful references prepared.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// True if no successful reference was observed.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// The prepared references, in trace order — the exact sequence both
    /// open-loop replay and the closed-loop hierarchy engine consume.
    pub fn refs(&self) -> &[PreparedRef] {
        &self.refs
    }

    /// Number of distinct files the trace references — the arena extent
    /// every [`FileId`] in [`PreparedTrace::refs`] indexes into.
    pub fn file_count(&self) -> usize {
        self.file_count
    }

    /// The interner that assigned the dense ids; maps a [`FileId`] back
    /// to its MSS path. Empty for traces built by
    /// [`PreparedTrace::from_refs`].
    pub fn files(&self) -> &FileTable {
        &self.table
    }

    /// Replays one policy over the trace.
    pub fn replay(&self, policy: &dyn MigrationPolicy, config: &EvalConfig) -> PolicyOutcome {
        let stats = replay(&self.refs, self.file_count, policy, config);
        PolicyOutcome {
            name: policy.name(),
            stats,
            miss_ratio: stats.miss_ratio(),
            byte_miss_ratio: stats.byte_miss_ratio(),
            person_minutes_per_day: stats
                .person_minutes_per_day(config.wait_s_per_miss, config.trace_days),
            latency: None,
        }
    }

    /// Replays every policy sequentially, in input order.
    ///
    /// Sweep cells use this: the sweep runner already parallelizes at
    /// the trace-shard level (all of a shard's policy × cache cells
    /// replay on that shard's worker), so nesting a thread per policy
    /// underneath would only oversubscribe the pool once a matrix has
    /// several shards.
    pub fn evaluate(
        &self,
        policies: &[Box<dyn MigrationPolicy>],
        config: &EvalConfig,
    ) -> Vec<PolicyOutcome> {
        policies
            .iter()
            .map(|p| self.replay(p.as_ref(), config))
            .collect()
    }

    /// Replays every policy on a worker thread per policy; outcomes come
    /// back in the input policy order.
    pub fn evaluate_parallel(
        &self,
        policies: &[Box<dyn MigrationPolicy>],
        config: &EvalConfig,
    ) -> Vec<PolicyOutcome> {
        let results: Mutex<Vec<Option<PolicyOutcome>>> = Mutex::new(vec![None; policies.len()]);
        std::thread::scope(|scope| {
            for (i, policy) in policies.iter().enumerate() {
                let results = &results;
                scope.spawn(move || {
                    let outcome = self.replay(policy.as_ref(), config);
                    results.lock()[i] = Some(outcome);
                });
            }
        });
        results
            .into_inner()
            .into_iter()
            .map(|o| o.expect("every policy produces an outcome"))
            .collect()
    }

    /// Sweeps cache capacity for one policy, for miss-ratio-vs-size
    /// curves.
    ///
    /// Since the single-pass engine landed this is a thin wrapper over
    /// [`PreparedTrace::miss_ratio_curve`]: one trace walk produces the
    /// whole grid, with results bit-identical to the per-capacity
    /// replays this method used to run.
    pub fn capacity_sweep(
        &self,
        policy: &dyn MigrationPolicy,
        capacities: &[u64],
        base: &EvalConfig,
    ) -> Vec<(u64, f64)> {
        self.miss_ratio_curve(policy, capacities, base)
            .miss_ratios()
    }

    /// Computes the exact miss-ratio curve for one policy at a grid of
    /// capacities in a single pass; see [`crate::mrc`].
    pub fn miss_ratio_curve(
        &self,
        policy: &dyn MigrationPolicy,
        capacities: &[u64],
        base: &EvalConfig,
    ) -> crate::mrc::MissRatioCurve {
        crate::mrc::sweep_capacities(&self.refs, policy, capacities, base)
    }

    /// The pre-index capacity sweep: one full replay per capacity with
    /// the sort-based rescan. Kept as the oracle and benchmark baseline
    /// for the single-pass engine; see
    /// [`crate::mrc::sweep_capacities_naive`].
    pub fn capacity_sweep_naive(
        &self,
        policy: &dyn MigrationPolicy,
        capacities: &[u64],
        base: &EvalConfig,
    ) -> Vec<(u64, f64)> {
        crate::mrc::sweep_capacities_naive(&self.refs, policy, capacities, base).miss_ratios()
    }

    /// Wraps already-prepared references for replay. The caller vouches
    /// for the invariants [`TracePrep`] normally establishes: times in
    /// trace order and `next_use` from a consistent reverse sweep.
    pub fn from_refs(refs: Vec<PreparedRef>) -> Self {
        let file_count = refs
            .iter()
            .map(|r| r.id.index() + 1)
            .max()
            .unwrap_or_default();
        PreparedTrace {
            refs,
            table: FileTable::new(),
            file_count,
        }
    }
}

/// Pre-processes a borrowed trace for replay.
pub fn prepare<'a>(records: impl IntoIterator<Item = &'a TraceRecord>) -> PreparedTrace {
    let mut prep = TracePrep::new();
    for rec in records {
        prep.observe(rec);
    }
    prep.finish()
}

fn replay(
    prepared: &[PreparedRef],
    file_count: usize,
    policy: &dyn MigrationPolicy,
    config: &EvalConfig,
) -> CacheStats {
    let mut session = ReplaySession::new(file_count, policy, config);
    for r in prepared {
        session.feed(r);
    }
    session.finish()
}

/// Incremental open-loop replay: feed prepared references in time
/// order — from any source, chunk by chunk — and collect the cache
/// statistics at the end.
///
/// This is the streaming counterpart of [`PreparedTrace::replay`] for
/// traces that never materialize as a slice: the imported-trace replay
/// store hands chunks straight from disk into a session, so peak
/// memory is O(`file_count`) + one chunk regardless of trace length.
/// Feeding the same references produces bit-identical statistics to
/// the slice path (which is itself implemented on top of this).
#[derive(Debug)]
pub struct ReplaySession<'p> {
    cache: DiskCache<'p>,
}

impl<'p> ReplaySession<'p> {
    /// Opens a session over an empty cache sized for `file_count`
    /// distinct files.
    pub fn new(file_count: usize, policy: &'p dyn MigrationPolicy, config: &EvalConfig) -> Self {
        let mut cache = DiskCache::new(config.cache, policy);
        // The trace's file universe is known up front, so the per-file
        // arenas are sized once here instead of growing through doubling
        // reallocations mid-replay.
        cache.reserve_files(file_count);
        // Open-loop fallback for the miss-latency feedback channel: no
        // device model runs, so every entry carries the flat per-miss
        // wait constant (see `crate::feedback` for the closed-loop
        // counterpart).
        cache.set_est_miss_wait_s(config.wait_s_per_miss);
        ReplaySession { cache }
    }

    /// Replays one reference.
    pub fn feed(&mut self, r: &PreparedRef) {
        if r.write {
            self.cache.write(r.id, r.size, r.time, r.next_use);
        } else {
            self.cache.read(r.id, r.size, r.time, r.next_use);
        }
    }

    /// Finishes the session, returning the accumulated statistics.
    pub fn finish(self) -> CacheStats {
        *self.cache.stats()
    }
}

/// Runs every policy over the trace, in parallel, and returns outcomes
/// in the input policy order.
pub fn evaluate_policies(
    records: &[TraceRecord],
    policies: &[Box<dyn MigrationPolicy>],
    config: &EvalConfig,
) -> Vec<PolicyOutcome> {
    prepare(records).evaluate_parallel(policies, config)
}

/// Sweeps cache capacity for one policy, for miss-ratio-vs-size curves.
pub fn capacity_sweep(
    records: &[TraceRecord],
    policy: &dyn MigrationPolicy,
    capacities: &[u64],
    base: &EvalConfig,
) -> Vec<(u64, f64)> {
    prepare(records).capacity_sweep(policy, capacities, base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{standard_suite, Belady, Lru, Stp};
    use fmig_trace::time::TRACE_EPOCH;
    use fmig_trace::Endpoint;

    /// A skewed workload: a hot set of small files re-read constantly and
    /// a stream of cold large files.
    fn skewed_trace() -> Vec<TraceRecord> {
        let mut records = Vec::new();
        let mut t = 0i64;
        for round in 0..60 {
            for hot in 0..6 {
                t += 20;
                records.push(TraceRecord::read(
                    Endpoint::MssDisk,
                    TRACE_EPOCH.add_secs(t),
                    400_000,
                    format!("/hot/f{hot}"),
                    1,
                ));
            }
            t += 20;
            records.push(TraceRecord::read(
                Endpoint::MssTapeSilo,
                TRACE_EPOCH.add_secs(t),
                3_000_000,
                format!("/cold/f{round}"),
                1,
            ));
        }
        records
    }

    #[test]
    fn belady_is_a_lower_bound() {
        let trace = skewed_trace();
        let policies: Vec<Box<dyn MigrationPolicy>> =
            vec![Box::new(Belady), Box::new(Lru), Box::new(Stp::classic())];
        let config = EvalConfig::with_capacity(6_000_000);
        let out = evaluate_policies(&trace, &policies, &config);
        let belady = out[0].miss_ratio;
        for o in &out[1..] {
            assert!(
                belady <= o.miss_ratio + 1e-9,
                "Belady {belady} beaten by {} at {}",
                o.name,
                o.miss_ratio
            );
        }
    }

    #[test]
    fn outcomes_follow_input_order_and_have_names() {
        let trace = skewed_trace();
        let suite = standard_suite();
        let out = evaluate_policies(&trace, &suite, &EvalConfig::with_capacity(5_000_000));
        assert_eq!(out.len(), suite.len());
        for (o, p) in out.iter().zip(suite.iter()) {
            assert_eq!(o.name, p.name());
            assert!(o.miss_ratio >= 0.0 && o.miss_ratio <= 1.0);
        }
    }

    #[test]
    fn bigger_caches_miss_less() {
        let trace = skewed_trace();
        let sweep = capacity_sweep(
            &trace,
            &Stp::classic(),
            &[1_000_000, 4_000_000, 16_000_000, 64_000_000],
            &EvalConfig::with_capacity(0).clone(),
        );
        for w in sweep.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-9,
                "miss ratio rose with capacity: {sweep:?}"
            );
        }
        // A cache big enough for everything only cold-misses.
        let full = sweep.last().unwrap().1;
        let cold = 6.0 / (6.0 * 60.0) + 60.0 / (60.0 * 7.0) * 0.0; // loose sanity bound
        assert!(full <= 0.2, "full-cache miss ratio {full} (cold ~{cold})");
    }

    #[test]
    fn streamed_prep_matches_batch_evaluation() {
        let trace = skewed_trace();
        let suite = standard_suite();
        let config = EvalConfig::with_capacity(5_000_000);
        let batch = evaluate_policies(&trace, &suite, &config);
        let mut prep = TracePrep::new();
        for rec in &trace {
            prep.observe(rec);
        }
        let streamed = prep.finish().evaluate(&suite, &config);
        assert_eq!(batch, streamed);
    }

    #[test]
    fn errors_are_skipped_in_replay() {
        let mut trace = skewed_trace();
        let mut bad = trace[0].clone();
        bad.error = Some(fmig_trace::ErrorKind::FileNotFound);
        trace.insert(0, bad);
        let out = evaluate_policies(
            &trace,
            &[Box::new(Lru) as Box<dyn MigrationPolicy>],
            &EvalConfig::with_capacity(5_000_000),
        );
        let total = out[0].stats.read_hits + out[0].stats.read_misses + out[0].stats.writes;
        assert_eq!(total as usize, trace.len() - 1);
    }

    #[test]
    fn person_minutes_scale_with_misses() {
        let trace = skewed_trace();
        let out = evaluate_policies(
            &trace,
            &[Box::new(Lru) as Box<dyn MigrationPolicy>],
            &EvalConfig {
                wait_s_per_miss: 60.0,
                trace_days: 1.0,
                cache: CacheConfig::with_capacity(2_000_000),
            },
        );
        let expected = out[0].stats.read_misses as f64;
        assert!((out[0].person_minutes_per_day - expected).abs() < 1e-9);
    }
}
