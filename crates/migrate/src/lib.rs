//! File-migration algorithms and the §6 design-implication experiments.
//!
//! The measurement half of the paper lives in `fmig-analysis`; this crate
//! holds the algorithmic half:
//!
//! * [`policy`] — STP (Smith's space-time product), LRU, FIFO,
//!   size-ordered, SAAC, random, and Belady's clairvoyant bound;
//! * [`cache`] — a watermark-driven disk-cache simulator measuring miss
//!   ratios and write-back stalls under any policy;
//! * [`eval`] — the Smith/Lawrie comparison harness (parallel across
//!   policies) plus capacity sweeps;
//! * [`mrc`] — single-pass miss-ratio curves: a whole capacity grid from
//!   one trace walk, exact against per-capacity replay;
//! * [`feedback`] — the miss-latency feedback channel: an EWMA of
//!   measured recall waits per (tape tier, size class) that the
//!   closed-loop engine publishes to latency-aware policies;
//! * [`hashed`] — the frozen pre-dense-identity cache baseline, kept
//!   as the scaling gate's reference and the equivalence oracle;
//! * [`dedup`] — §6's eight-hour same-file request deduplication;
//! * [`writeback`] — §6's lazy write-behind trace transformation;
//! * [`prefetch`] — sequential (day-1 → day-2) prefetch predictability;
//! * [`residency`] — the MSS-internal residency-window migration study;
//! * [`dividing`] — the disk/tape dividing-point study.
//!
//! # Examples
//!
//! ```
//! use fmig_migrate::cache::{CacheConfig, DiskCache};
//! use fmig_migrate::policy::Stp;
//!
//! let stp = Stp::classic();
//! let mut cache = DiskCache::new(CacheConfig::with_capacity(1 << 30), &stp);
//! assert!(!cache.read(1, 25 << 20, 0, None)); // cold miss
//! assert!(cache.read(1, 25 << 20, 60, None)); // hit
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod dedup;
pub mod dividing;
pub mod eval;
pub mod feedback;
pub mod hashed;
pub mod mrc;
pub mod policy;
pub mod prefetch;
mod rank;
pub mod residency;
pub mod shard;
pub mod writeback;

pub use cache::{
    CacheConfig, CacheOp, CacheStats, DiskCache, EvictionMode, ReadResult, INDEX_MIN_RESIDENTS,
};
pub use dedup::DedupReport;
pub use dividing::{DeviceModel, DividingPointStudy, DividingRow};
pub use feedback::LatencyFeedback;
pub use hashed::{HashedDiskCache, HashedInterner};

pub use eval::{
    evaluate_policies, EvalConfig, LatencyOutcome, PolicyOutcome, PreparedRef, PreparedTrace,
    ReplaySession, TracePrep,
};
pub use mrc::{MissRatioCurve, MrcPoint};
pub use policy::{
    aggregate_delay, standard_suite, AffinePriority, Belady, Fifo, FileView, LargestFirst, Lru,
    LruMad, MigrationPolicy, RandomEvict, Saac, SmallestFirst, Stp, StpLat,
};
pub use prefetch::PrefetchReport;
pub use residency::{ResidencyCostModel, ResidencyOutcome, ResidencyPolicy};
pub use shard::ShardedCache;
pub use writeback::{defer_writes, deferral_report, DeferralReport};
