//! The disk/tape dividing point (§6-c).
//!
//! NCAR keeps files under 30 MB on MSS disk and sends larger files to
//! tape. The paper flags the cutoff as "a subject for future research;
//! however, it is likely that the switchover point will be a function of
//! tape seek speed and transfer rate." This module runs that study: given
//! the observed access-size distribution, a disk byte budget, and device
//! models, it sweeps the threshold and reports mean response time.

use serde::{Deserialize, Serialize};

/// First-byte overhead + streaming rate of one storage tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Seconds from request to first byte (queue-free).
    pub overhead_s: f64,
    /// Streaming rate in bytes/second.
    pub rate_bps: f64,
}

impl DeviceModel {
    /// Response time for one access of `size` bytes.
    pub fn access_s(&self, size: u64) -> f64 {
        self.overhead_s + size as f64 / self.rate_bps
    }
}

/// The two-tier placement study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DividingPointStudy {
    /// The fast tier (MSS staging disk).
    pub disk: DeviceModel,
    /// The slow tier (robot tape: mount + seek + stream).
    pub tape: DeviceModel,
    /// Disk capacity budget in bytes; a threshold whose resident set
    /// exceeds this is infeasible.
    pub disk_budget: u64,
}

impl DividingPointStudy {
    /// The paper's hardware: ~30 s effective disk response overhead is
    /// dominated by queueing, but queue-free models are what the §6
    /// argument uses — disk sub-second, silo tape ~60 s to first byte,
    /// both ~2.2 MB/s, 100 GB of staging disk.
    pub fn ncar() -> Self {
        DividingPointStudy {
            disk: DeviceModel {
                overhead_s: 0.5,
                rate_bps: 2.4e6,
            },
            tape: DeviceModel {
                overhead_s: 60.0,
                rate_bps: 2.2e6,
            },
            disk_budget: 100_000_000_000,
        }
    }
}

/// One row of the threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DividingRow {
    /// Placement threshold in bytes: files strictly below live on disk.
    pub threshold: u64,
    /// Bytes the disk tier must hold (sum of distinct file sizes below
    /// the threshold).
    pub disk_resident_bytes: u64,
    /// Whether the resident set fits the budget.
    pub feasible: bool,
    /// Mean response time per access under this placement.
    pub mean_response_s: f64,
    /// Fraction of accesses served from disk.
    pub disk_access_share: f64,
}

impl DividingPointStudy {
    /// Sweeps thresholds over the workload.
    ///
    /// `static_sizes` holds each distinct file's size once (capacity
    /// accounting); `access_sizes` holds one entry per access (response
    /// accounting).
    pub fn sweep(
        &self,
        static_sizes: &[u64],
        access_sizes: &[u64],
        thresholds: &[u64],
    ) -> Vec<DividingRow> {
        thresholds
            .iter()
            .map(|&threshold| {
                let disk_resident_bytes: u64 = static_sizes
                    .iter()
                    .filter(|&&s| s < threshold)
                    .copied()
                    .sum();
                let feasible = disk_resident_bytes <= self.disk_budget;
                let mut total_s = 0.0;
                let mut disk_accesses = 0u64;
                for &size in access_sizes {
                    if size < threshold {
                        total_s += self.disk.access_s(size);
                        disk_accesses += 1;
                    } else {
                        total_s += self.tape.access_s(size);
                    }
                }
                let n = access_sizes.len().max(1) as f64;
                DividingRow {
                    threshold,
                    disk_resident_bytes,
                    feasible,
                    mean_response_s: total_s / n,
                    disk_access_share: disk_accesses as f64 / n,
                }
            })
            .collect()
    }

    /// The largest feasible threshold (best response time under the
    /// budget, since response time is monotone in the threshold).
    pub fn best_feasible(
        &self,
        static_sizes: &[u64],
        access_sizes: &[u64],
        thresholds: &[u64],
    ) -> Option<DividingRow> {
        self.sweep(static_sizes, access_sizes, thresholds)
            .into_iter()
            .filter(|r| r.feasible)
            .min_by(|a, b| {
                a.mean_response_s
                    .partial_cmp(&b.mean_response_s)
                    .expect("finite response times")
            })
    }

    /// The break-even file size at which tape matches disk response
    /// time when tape's only penalty is its overhead — §6's observation
    /// that for large files "transfer time dominates", making the added
    /// mount delay "not as noticeable".
    pub fn indifference_size(&self) -> f64 {
        // overhead_d + s/r_d = overhead_t + s/r_t  =>  solve for s.
        let num = self.tape.overhead_s - self.disk.overhead_s;
        let den = 1.0 / self.disk.rate_bps - 1.0 / self.tape.rate_bps;
        if den >= 0.0 {
            // Disk is slower per byte (never happens with real hardware):
            // tape never catches up.
            f64::INFINITY
        } else {
            num / -den
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study(budget: u64) -> DividingPointStudy {
        DividingPointStudy {
            disk_budget: budget,
            ..DividingPointStudy::ncar()
        }
    }

    #[test]
    fn response_time_improves_with_threshold_until_budget() {
        let s = study(u64::MAX);
        let static_sizes: Vec<u64> = (1..=100).map(|i| i * 1_000_000).collect();
        let accesses = static_sizes.clone();
        let rows = s.sweep(
            &static_sizes,
            &accesses,
            &[0, 10_000_000, 50_000_000, 200_000_000],
        );
        for w in rows.windows(2) {
            assert!(
                w[1].mean_response_s <= w[0].mean_response_s + 1e-9,
                "response should fall as more goes to disk: {rows:?}"
            );
        }
        assert_eq!(rows[0].disk_access_share, 0.0);
        assert_eq!(rows[3].disk_access_share, 1.0);
    }

    #[test]
    fn budget_marks_infeasible_thresholds() {
        let s = study(10_000_000);
        let static_sizes = vec![4_000_000u64, 5_000_000, 9_000_000];
        let rows = s.sweep(&static_sizes, &static_sizes, &[6_000_000, 20_000_000]);
        assert!(rows[0].feasible, "9 MB resident fits 10 MB budget");
        assert!(!rows[1].feasible, "18 MB resident exceeds budget");
        let best = s
            .best_feasible(&static_sizes, &static_sizes, &[6_000_000, 20_000_000])
            .unwrap();
        assert_eq!(best.threshold, 6_000_000);
    }

    #[test]
    fn indifference_size_matches_hand_solve() {
        let s = DividingPointStudy {
            disk: DeviceModel {
                overhead_s: 0.0,
                rate_bps: 3.0e6,
            },
            tape: DeviceModel {
                overhead_s: 60.0,
                rate_bps: 1.5e6,
            },
            disk_budget: 0,
        };
        // 60 = s/1.5e6 - s/3e6 = s/3e6  =>  s = 180 MB.
        assert!((s.indifference_size() - 180.0e6).abs() < 1.0);
    }

    #[test]
    fn equal_rates_mean_tape_never_catches_up() {
        let s = DividingPointStudy {
            disk: DeviceModel {
                overhead_s: 0.5,
                rate_bps: 2.0e6,
            },
            tape: DeviceModel {
                overhead_s: 60.0,
                rate_bps: 2.0e6,
            },
            disk_budget: 0,
        };
        assert!(s.indifference_size().is_infinite());
    }

    #[test]
    fn ncar_defaults_are_sane() {
        let s = DividingPointStudy::ncar();
        // With similar rates, the indifference size is enormous — which
        // is exactly why the budget, not response time, sets the cutoff.
        assert!(s.indifference_size() > 1e9);
        assert_eq!(s.disk_budget, 100_000_000_000);
    }

    #[test]
    fn empty_workload_is_zero() {
        let s = study(100);
        let rows = s.sweep(&[], &[], &[1000]);
        assert_eq!(rows[0].mean_response_s, 0.0);
        assert_eq!(rows[0].disk_access_share, 0.0);
        assert!(rows[0].feasible);
    }
}
