//! The frozen *hashed-identity* cache baseline.
//!
//! This module is a deliberate copy of the disk-cache implementation as
//! it stood **before** the dense-identity redesign: per-file state lives
//! in a `HashMap<u64, Entry>`, every reference pays a hash + probe, and
//! the rescan purge path allocates a fresh ranking `Vec` per purge. The
//! live implementation ([`crate::cache::DiskCache`]) replaced all of
//! that with [`fmig_trace::FileId`]-indexed arenas; this copy is kept
//! for two jobs:
//!
//! 1. **The scaling gate.** `repro sweep` replays the same prepared
//!    trace through both implementations and records
//!    `scaling_refs_per_sec` (dense) next to `hashed_refs_per_sec`
//!    (this module) in `BENCH_sweep.json`; `ci/check_bench.py` gates on
//!    the ratio, so a regression that quietly reintroduces hashing to
//!    the hot path fails CI.
//! 2. **The equivalence oracle.** Identity assignment here is the same
//!    first-appearance interning order [`fmig_trace::FileTable`] uses,
//!    and every tie-break keys on the raw id value, so the two
//!    implementations must produce bit-identical hit/miss/eviction
//!    sequences on any trace. `tests/dense_identity.rs` property-tests
//!    that equivalence across every shipped policy.
//!
//! Because the two implementations share the public vocabulary types
//! ([`CacheConfig`], [`CacheStats`], [`CacheOp`], [`ReadResult`],
//! [`EvictionMode`]), op streams and stats compare directly. The only
//! concession to the new world is at the edges: emitted ops and policy
//! [`FileView`]s carry [`FileId`] (the values are identical — dense ids
//! *are* the old interned u64s, narrowed).
//!
//! Nothing else in the workspace should depend on this module; it is a
//! measurement instrument, not an API.

use std::collections::HashMap;

use fmig_trace::{Direction, FileId, TraceRecord};

use crate::cache::{
    CacheConfig, CacheOp, CacheStats, EvictionMode, ReadResult, INDEX_MIN_RESIDENTS,
};
use crate::eval::{EvalConfig, PreparedRef};
use crate::policy::{FileView, MigrationPolicy};
use crate::rank::{Candidate, Popped, RankKey, VictimRank};

#[derive(Debug, Clone, Copy)]
struct Entry {
    size: u64,
    last_ref: i64,
    created: i64,
    ref_count: u32,
    dirty: bool,
    fetching: bool,
    next_use: Option<i64>,
    est_miss_wait_s: f64,
}

/// Incremental victim ranking for affine-priority policies — the
/// hashed twin of the live cache's index (see [`crate::cache`] for the
/// full contract discussion).
#[derive(Debug)]
struct EvictionIndex {
    slope_bits: u64,
    rank: VictimRank<()>,
}

#[derive(Debug)]
enum IndexState {
    Unprobed,
    Active(EvictionIndex),
    Rescan,
}

/// The pre-redesign policy-driven disk cache: `HashMap<u64, Entry>`
/// keyed by interned id, hash + probe on every reference.
///
/// Decision-for-decision identical to [`crate::cache::DiskCache`]; see
/// the module docs for why it is kept.
pub struct HashedDiskCache<'p> {
    config: CacheConfig,
    policy: &'p dyn MigrationPolicy,
    entries: HashMap<u64, Entry>,
    usage: u64,
    stats: CacheStats,
    index: IndexState,
    eager_index: bool,
    skip_read_touch: bool,
    max_now: i64,
    est_miss_wait_s: f64,
}

/// Dense ids are the old interned u64s narrowed to u32, so widening the
/// hashed id back into a [`FileId`] for op emission and policy views is
/// value-preserving by construction.
fn fid(id: u64) -> FileId {
    FileId::from(id)
}

fn view(id: u64, e: &Entry) -> FileView {
    FileView {
        id: fid(id),
        size: e.size,
        last_ref: e.last_ref,
        created: e.created,
        ref_count: e.ref_count,
        next_use: e.next_use,
        est_miss_wait_s: e.est_miss_wait_s,
    }
}

impl<'p> HashedDiskCache<'p> {
    /// Creates an empty cache under the given policy.
    ///
    /// # Panics
    ///
    /// Panics if the watermarks are not `0 < low <= high <= 1`.
    pub fn new(config: CacheConfig, policy: &'p dyn MigrationPolicy) -> Self {
        Self::with_eviction_mode(config, policy, EvictionMode::Auto)
    }

    /// Creates an empty cache with an explicit victim-ranking mode; see
    /// [`EvictionMode`].
    ///
    /// # Panics
    ///
    /// Panics if the watermarks are not `0 < low <= high <= 1`.
    pub fn with_eviction_mode(
        config: CacheConfig,
        policy: &'p dyn MigrationPolicy,
        mode: EvictionMode,
    ) -> Self {
        assert!(
            config.low_watermark > 0.0
                && config.low_watermark <= config.high_watermark
                && config.high_watermark <= 1.0,
            "bad watermarks {} / {}",
            config.low_watermark,
            config.high_watermark
        );
        HashedDiskCache {
            config,
            policy,
            entries: HashMap::new(),
            usage: 0,
            stats: CacheStats::default(),
            index: match mode {
                EvictionMode::Auto | EvictionMode::Indexed => IndexState::Unprobed,
                EvictionMode::Rescan => IndexState::Rescan,
            },
            eager_index: mode == EvictionMode::Indexed,
            skip_read_touch: policy.read_touch_monotone(),
            max_now: i64::MIN,
            est_miss_wait_s: 0.0,
        }
    }

    /// Sets the miss-latency hint stamped onto entries at every touch;
    /// see [`crate::cache::DiskCache::set_est_miss_wait_s`].
    pub fn set_est_miss_wait_s(&mut self, est: f64) {
        self.est_miss_wait_s = est;
    }

    /// True while the incremental eviction index is ranking victims.
    pub fn uses_eviction_index(&self) -> bool {
        matches!(self.index, IndexState::Active(_))
    }

    /// Current bytes resident.
    pub fn usage(&self) -> u64 {
        self.usage
    }

    /// Files resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// True if the file is resident.
    pub fn contains(&self, id: u64) -> bool {
        self.entries.contains_key(&id)
    }

    /// Processes a read reference (open loop); returns `true` on a hit.
    pub fn read(&mut self, id: u64, size: u64, now: i64, next_use: Option<i64>) -> bool {
        let result = self.read_with(id, size, now, next_use, &mut |_| {});
        if result == ReadResult::Miss {
            self.fetch_complete(id);
        }
        result.is_resident()
    }

    /// Processes a read reference, reporting side effects to `ops`.
    pub fn read_with(
        &mut self,
        id: u64,
        size: u64,
        now: i64,
        next_use: Option<i64>,
        ops: &mut impl FnMut(CacheOp),
    ) -> ReadResult {
        self.note_time(now);
        let est = self.est_miss_wait_s;
        if let Some(e) = self.entries.get_mut(&id) {
            e.last_ref = now;
            e.ref_count += 1;
            e.next_use = next_use;
            e.est_miss_wait_s = est;
            self.stats.read_hits += 1;
            self.stats.read_hit_bytes += e.size;
            let snapshot = *e;
            if !self.skip_read_touch {
                self.index_upsert(id, snapshot);
            }
            return if snapshot.fetching {
                ReadResult::DelayedHit
            } else {
                ReadResult::Hit
            };
        }
        self.stats.read_misses += 1;
        self.stats.read_miss_bytes += size;
        ops(CacheOp::Fetch {
            id: fid(id),
            bytes: size,
        });
        self.insert(id, size, now, false, true, next_use, ops);
        ReadResult::Miss
    }

    /// Processes a write reference (open loop); the file lands dirty.
    pub fn write(&mut self, id: u64, size: u64, now: i64, next_use: Option<i64>) {
        self.write_with(id, size, now, next_use, &mut |_| {});
    }

    /// Processes a write reference, reporting side effects to `ops`.
    pub fn write_with(
        &mut self,
        id: u64,
        size: u64,
        now: i64,
        next_use: Option<i64>,
        ops: &mut impl FnMut(CacheOp),
    ) {
        self.note_time(now);
        self.stats.writes += 1;
        if self.config.eager_writeback {
            self.stats.writeback_bytes += size;
            ops(CacheOp::Writeback {
                id: fid(id),
                bytes: size,
            });
        }
        let est = self.est_miss_wait_s;
        if let Some(e) = self.entries.get_mut(&id) {
            self.usage = self.usage - e.size + size;
            e.size = size;
            e.last_ref = now;
            e.ref_count += 1;
            e.next_use = next_use;
            e.est_miss_wait_s = est;
            e.dirty = !self.config.eager_writeback;
            let snapshot = *e;
            self.index_upsert(id, snapshot);
            self.maybe_purge(now, ops);
            return;
        }
        let dirty = !self.config.eager_writeback;
        self.insert(id, size, now, dirty, false, next_use, ops);
    }

    /// Marks `id`'s outstanding tape recall as delivered; see
    /// [`crate::cache::DiskCache::fetch_complete`].
    pub fn fetch_complete(&mut self, id: u64) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) => {
                let was = e.fetching;
                e.fetching = false;
                was
            }
            None => false,
        }
    }

    /// Re-arms `id`'s outstanding-fetch state after a failed recall
    /// attempt; see [`crate::cache::DiskCache::fetch_failed`].
    pub fn fetch_failed(&mut self, id: u64) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) => {
                e.fetching = true;
                true
            }
            None => false,
        }
    }

    #[expect(clippy::too_many_arguments)]
    fn insert(
        &mut self,
        id: u64,
        size: u64,
        now: i64,
        dirty: bool,
        fetching: bool,
        next_use: Option<i64>,
        ops: &mut impl FnMut(CacheOp),
    ) {
        if size > self.config.capacity {
            // Larger than the whole cache: bypass (tape-direct).
            return;
        }
        let entry = Entry {
            size,
            last_ref: now,
            created: now,
            ref_count: 1,
            dirty,
            fetching,
            next_use,
            est_miss_wait_s: self.est_miss_wait_s,
        };
        self.entries.insert(id, entry);
        self.usage += size;
        self.index_upsert(id, entry);
        self.maybe_purge(now, ops);
    }

    fn note_time(&mut self, now: i64) {
        if now < self.max_now {
            self.index = IndexState::Rescan;
        } else {
            self.max_now = now;
        }
    }

    fn index_upsert(&mut self, id: u64, e: Entry) {
        let IndexState::Active(idx) = &mut self.index else {
            return;
        };
        match self.policy.affine(&view(id, &e)) {
            Some(a) if a.slope.to_bits() == idx.slope_bits => {
                idx.rank.push(RankKey {
                    intercept: a.intercept,
                    id,
                    payload: (),
                });
                if idx.rank.len() > self.entries.len() * 2 + 64 {
                    self.index = self.build_index();
                }
            }
            _ => self.index = IndexState::Rescan,
        }
    }

    fn maybe_purge(&mut self, now: i64, ops: &mut impl FnMut(CacheOp)) {
        let high = (self.config.capacity as f64 * self.config.high_watermark) as u64;
        if self.usage <= high {
            return;
        }
        let low = (self.config.capacity as f64 * self.config.low_watermark) as u64;
        if matches!(self.index, IndexState::Unprobed)
            && (self.eager_index || self.entries.len() >= INDEX_MIN_RESIDENTS)
        {
            self.index = self.build_index();
        }
        if matches!(self.index, IndexState::Active(_)) {
            self.purge_indexed(now, high, low, ops);
        } else {
            self.purge_rescan(now, high, low, ops);
        }
    }

    fn build_index(&self) -> IndexState {
        let mut slope_bits = None;
        let mut keys = Vec::with_capacity(self.entries.len());
        for (&id, e) in &self.entries {
            match self.policy.affine(&view(id, e)) {
                Some(a) => {
                    if *slope_bits.get_or_insert(a.slope.to_bits()) != a.slope.to_bits() {
                        return IndexState::Rescan;
                    }
                    keys.push(RankKey {
                        intercept: a.intercept,
                        id,
                        payload: (),
                    });
                }
                None => return IndexState::Rescan,
            }
        }
        match slope_bits {
            Some(slope_bits) => IndexState::Active(EvictionIndex {
                slope_bits,
                rank: VictimRank::from_keys(keys),
            }),
            None => IndexState::Rescan,
        }
    }

    fn purge_indexed(&mut self, now: i64, high: u64, low: u64, ops: &mut impl FnMut(CacheOp)) {
        while self.usage > low {
            let IndexState::Active(idx) = &mut self.index else {
                unreachable!("purge_indexed runs only in Active state");
            };
            let slope_bits = idx.slope_bits;
            let entries = &self.entries;
            let policy = self.policy;
            let popped = idx.rank.pop_best(|key| match entries.get(&key.id) {
                None => Candidate::Gone,
                Some(e) => match policy.affine(&view(key.id, e)) {
                    Some(a)
                        if a.slope.to_bits() == slope_bits
                            && a.intercept.to_bits() == key.intercept.to_bits() =>
                    {
                        Candidate::Live
                    }
                    Some(a) if a.slope.to_bits() == slope_bits => Candidate::Moved(a.intercept),
                    _ => Candidate::Abort,
                },
            });
            match popped {
                Popped::Victim(key) => self.evict(key.id, high, ops),
                Popped::Dry | Popped::Aborted => {
                    self.index = IndexState::Rescan;
                    self.purge_rescan(now, high, low, ops);
                    return;
                }
            }
        }
    }

    /// The exact fallback, with the historical cost model intact: a
    /// fresh ranking `Vec` is allocated on **every** purge (the live
    /// cache reuses a scratch buffer — that delta is part of what the
    /// scaling gate measures).
    fn purge_rescan(&mut self, now: i64, high: u64, low: u64, ops: &mut impl FnMut(CacheOp)) {
        let mut ranked: Vec<(f64, u64)> = self
            .entries
            .iter()
            .map(|(&id, e)| (self.policy.priority(&view(id, e), now), id))
            .collect();
        ranked.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, id) in ranked {
            if self.usage <= low {
                break;
            }
            self.evict(id, high, ops);
        }
    }

    fn evict(&mut self, id: u64, high: u64, ops: &mut impl FnMut(CacheOp)) {
        let stall = self.usage > high;
        let e = self.entries.remove(&id).expect("victim is resident");
        self.usage -= e.size;
        self.stats.evictions += 1;
        self.stats.evicted_bytes += e.size;
        if e.dirty {
            self.stats.writeback_bytes += e.size;
            if stall {
                self.stats.stall_bytes += e.size;
                ops(CacheOp::StallFlush {
                    id: fid(id),
                    bytes: e.size,
                });
            } else {
                self.stats.purge_flush_bytes += e.size;
                ops(CacheOp::PurgeFlush {
                    id: fid(id),
                    bytes: e.size,
                });
            }
        } else {
            ops(CacheOp::Drop {
                id: fid(id),
                bytes: e.size,
            });
        }
    }
}

impl core::fmt::Debug for HashedDiskCache<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HashedDiskCache")
            .field("policy", &self.policy.name())
            .field("usage", &self.usage)
            .field("files", &self.entries.len())
            .field("indexed", &self.uses_eviction_index())
            .finish()
    }
}

/// The pre-redesign string interner: a bare `HashMap<String, u64>`
/// handing out ids in first-appearance order — exactly the order
/// [`fmig_trace::FileTable`] assigns, which is what makes the two
/// implementations' id-keyed tie-breaks agree.
#[derive(Debug, Default)]
pub struct HashedInterner {
    index: HashMap<String, u64>,
}

impl HashedInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a path, assigning the next id on first sight.
    pub fn intern(&mut self, path: &str) -> u64 {
        let next = self.index.len() as u64;
        *self.index.entry(path.to_owned()).or_insert(next)
    }

    /// Number of distinct paths interned.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

/// String-keyed oracle replay: intern each record's MSS path through a
/// [`HashedInterner`] *as it streams by* and replay open-loop through a
/// [`HashedDiskCache`], capturing the full [`CacheOp`] stream.
///
/// This is the historical end-to-end path, mirroring
/// [`crate::eval::TracePrep`]'s record handling with hashed plumbing
/// throughout: errored records are skipped, sizes clamp to at least one
/// byte, and Belady's `next_use` oracle comes from a reverse sweep over
/// a `HashMap` keyed by the interned u64 (where the dense path indexes
/// an arena). `tests/dense_identity.rs` holds its stats, victim
/// sequence, and op stream bit-identical to the dense-id replay.
pub fn replay_records(
    records: &[TraceRecord],
    policy: &dyn MigrationPolicy,
    config: &EvalConfig,
) -> (CacheStats, Vec<CacheOp>) {
    let mut interner = HashedInterner::new();
    let mut refs: Vec<(u64, u64, bool, i64, Option<i64>)> = Vec::new();
    for rec in records {
        if rec.error.is_some() {
            continue;
        }
        let id = interner.intern(rec.mss_path.as_str());
        refs.push((
            id,
            rec.file_size.max(1),
            rec.direction() == Direction::Write,
            rec.start.as_unix(),
            None,
        ));
    }
    let mut next_seen: HashMap<u64, i64> = HashMap::new();
    for r in refs.iter_mut().rev() {
        r.4 = next_seen.get(&r.0).copied();
        next_seen.insert(r.0, r.3);
    }
    let mut cache = HashedDiskCache::new(config.cache, policy);
    cache.set_est_miss_wait_s(config.wait_s_per_miss);
    let mut ops = Vec::new();
    for &(id, size, write, t, next_use) in &refs {
        if write {
            cache.write_with(id, size, t, next_use, &mut |op| ops.push(op));
        } else if cache.read_with(id, size, t, next_use, &mut |op| ops.push(op)) == ReadResult::Miss
        {
            cache.fetch_complete(id);
        }
    }
    (*cache.stats(), ops)
}

/// Replays an already-prepared reference stream through the hashed
/// baseline cache — the `hashed_refs_per_sec` leg of the scaling gate.
///
/// Takes the same [`PreparedRef`] slice the dense replay consumes
/// (ids widen back to u64), so the benchmark isolates exactly the
/// identity-plumbing cost: hash + probe per reference versus an array
/// index.
pub fn replay_prepared(
    refs: &[PreparedRef],
    policy: &dyn MigrationPolicy,
    config: &EvalConfig,
) -> CacheStats {
    let mut cache = HashedDiskCache::new(config.cache, policy);
    cache.set_est_miss_wait_s(config.wait_s_per_miss);
    for r in refs {
        let id = u64::from(r.id);
        if r.write {
            cache.write(id, r.size, r.time, r.next_use);
        } else {
            cache.read(id, r.size, r.time, r.next_use);
        }
    }
    *cache.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Lru;

    #[test]
    fn interner_matches_file_table_order() {
        let mut hashed = HashedInterner::new();
        let mut dense = fmig_trace::FileTable::new();
        for p in ["/a", "/b", "/a", "/c", "/b", "/d"] {
            assert_eq!(hashed.intern(p), u64::from(dense.intern(p)));
        }
        assert_eq!(hashed.len(), dense.len());
    }

    #[test]
    fn hashed_cache_matches_dense_cache_on_a_small_trace() {
        let config = CacheConfig::with_capacity(100);
        let lru = Lru;
        let mut hashed = HashedDiskCache::new(config, &lru);
        let mut dense = crate::cache::DiskCache::new(config, &lru);
        // Enough writes to force purges, then re-reads to count hits.
        for i in 0..50u64 {
            hashed.write(i % 7, 30, i as i64, None);
            dense.write(FileId::from(i % 7), 30, i as i64, None);
            hashed.read(i % 5, 30, i as i64, None);
            dense.read(FileId::from(i % 5), 30, i as i64, None);
        }
        assert_eq!(hashed.stats(), dense.stats());
        assert_eq!(hashed.usage(), dense.usage());
        assert_eq!(hashed.len(), dense.len());
    }
}
