//! Disk-cache simulation under a migration policy.
//!
//! Models the fast tier (MSS staging disk or Cray local disk) in front of
//! tape: references hit or miss; when usage crosses the high watermark the
//! policy picks victims until the low watermark is reached — the
//! "migrate off disk" decision every §2.3 study evaluates by miss ratio.
//!
//! Also models §6's write-behind: files are dirty until flushed to tape.
//! With `eager_writeback`, dirty data is flushed as resources allow and
//! marked "deleteable", so space reclamation never stalls on a tape
//! write; without it, evicting a dirty file pays the flush at eviction
//! time (`stall_bytes`).
//!
//! # Open loop vs closed loop
//!
//! The original API ([`DiskCache::read`] / [`DiskCache::write`]) is
//! *open-loop*: a miss is charged a fixed cost and the fetched file is
//! resident instantly. The event-driven API ([`DiskCache::read_with`] /
//! [`DiskCache::write_with`] / [`DiskCache::fetch_complete`]) reports
//! every side effect as a [`CacheOp`] so a device simulator can turn it
//! into real traffic: misses become tape recalls that stay *outstanding*
//! until the engine delivers them (references meanwhile coalesce as
//! [`ReadResult::DelayedHit`]), and write-behind and purge flushes become
//! tape writes that compete with those recalls. Both APIs make identical
//! hit/miss/eviction decisions on the same reference sequence, which is
//! what lets the closed loop reproduce open-loop miss ratios exactly.
//!
//! # Dense identity and the entry arena
//!
//! Files are named by [`FileId`] — the dense index handed out by
//! [`fmig_trace::FileTable`] at trace preparation. Per-file state lives
//! in a flat arena (`Vec<Option<Entry>>` addressed by `id.index()`), so
//! the replay hot path never hashes: a hit is one bounds check and one
//! array load. A slot is vacated on eviction and *reused* when the same
//! file re-enters; a per-slot epoch counts (re-)creations
//! ([`DiskCache::slot_epoch`]) as the observable arena invariant. Slot
//! reuse cannot alias stale eviction-index keys onto a re-created entry
//! (no ABA): pop-time validation is by *value* — a popped key counts
//! only if the live entry's current affine intercept equals the key's
//! bit-for-bit — so a stale key for a previous incarnation either
//! matches the new intercept (then it *is* the correct current key) or
//! is discarded, exactly as if the entry had mutated in place.
//!
//! The convenience [`From`] conversions on [`FileId`] keep integer-
//! literal call sites (`cache.read(7, ...)`) compiling; they are the
//! thin interning adapter over the old `u64`-keyed API.
//!
//! # Victim ranking
//!
//! A watermark purge must evict files in `(priority desc, id asc)`
//! order. Historically that meant re-ranking and sorting *every*
//! resident file on *every* purge — `O(n log n)` on the replay hot path.
//! When the policy advertises an affine priority
//! ([`MigrationPolicy::affine`]: `slope · now + intercept` with one
//! shared slope), pairwise order is independent of `now`, so the cache
//! keeps an incremental [`EvictionMode::Auto`] index — a monotone queue
//! that self-degrades to a lazy max-heap (see the `rank` module) — and
//! each purge pops victims in O(1) on the monotone fast path (LRU,
//! FIFO) and amortized `O(log n)` otherwise. Policies whose read
//! touches never raise their key ([`MigrationPolicy::
//! read_touch_monotone`]) skip index maintenance on the hit path
//! entirely.
//!
//! Policies whose pairwise order *drifts with the clock* (STP, SAAC,
//! salted random, the latency-aware pair) can never be keyed once, but
//! they advertise a [`MigrationPolicy::kinetic`] closed-form curve, and
//! the cache ranks them with a kinetic tournament
//! (`crate::rank::KineticTournament`): each
//! internal node caches its winner plus a certificate (the earliest
//! instant the comparison could flip), so a purge replays only expired
//! subtrees and each entry mutation one root-to-leaf path — amortized
//! `O(log n)` where the pre-kinetic implementation re-ranked all `n`
//! residents per purge. Only policies with *neither* form (or broken
//! contracts, or a backwards clock) take the exact rescan, which stays
//! NaN-proof via `f64::total_cmp` and `sort_unstable`. All paths
//! produce bit-identical victim sequences; `tests/mrc_index.rs` and
//! `tests/kinetic_index.rs` property-test that equivalence.

use fmig_trace::FileId;
use serde::{Deserialize, Serialize};

use crate::policy::{FileView, KineticForm, MigrationPolicy};
use crate::rank::{Candidate, KineticTournament, Popped, RankKey, VictimRank};

/// Configuration of the simulated disk cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Usable capacity in bytes.
    pub capacity: u64,
    /// Purge trigger as a fraction of capacity (e.g. 0.95).
    pub high_watermark: f64,
    /// Purge target as a fraction of capacity (e.g. 0.80).
    pub low_watermark: f64,
    /// Flush dirty files promptly (the §6 recommendation) instead of at
    /// eviction time.
    pub eager_writeback: bool,
}

impl CacheConfig {
    /// A cache of `capacity` bytes with the conventional 95/80 marks.
    pub fn with_capacity(capacity: u64) -> Self {
        CacheConfig {
            capacity,
            high_watermark: 0.95,
            low_watermark: 0.80,
            eager_writeback: true,
        }
    }
}

/// Outcome counters for a cache run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Read references that hit.
    pub read_hits: u64,
    /// Read references that missed (fetched from tape).
    pub read_misses: u64,
    /// Bytes of read hits.
    pub read_hit_bytes: u64,
    /// Bytes fetched on read misses.
    pub read_miss_bytes: u64,
    /// Write references (always land in the cache).
    pub writes: u64,
    /// Files evicted by the policy.
    pub evictions: u64,
    /// Bytes evicted.
    pub evicted_bytes: u64,
    /// Dirty bytes flushed while usage still exceeded the high watermark
    /// — demand evictions whose flush the triggering reference waits on
    /// (zero with eager write-behind).
    pub stall_bytes: u64,
    /// Dirty bytes flushed by the background part of a watermark purge,
    /// after usage dropped back under the high watermark on the way to
    /// the low one (zero with eager write-behind).
    pub purge_flush_bytes: u64,
    /// Bytes flushed to tape in the background (eager write-behind plus
    /// every dirty eviction, stall or purge).
    pub writeback_bytes: u64,
}

impl CacheStats {
    /// Read miss ratio by references.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.read_hits + self.read_misses;
        if total == 0 {
            0.0
        } else {
            self.read_misses as f64 / total as f64
        }
    }

    /// Read miss ratio by bytes.
    pub fn byte_miss_ratio(&self) -> f64 {
        let total = self.read_hit_bytes + self.read_miss_bytes;
        if total == 0 {
            0.0
        } else {
            self.read_miss_bytes as f64 / total as f64
        }
    }

    /// §2.3's cost translation: person-minutes lost per day to misses,
    /// given the mean tape wait per miss and the trace length.
    pub fn person_minutes_per_day(&self, wait_s_per_miss: f64, trace_days: f64) -> f64 {
        if trace_days <= 0.0 {
            return 0.0;
        }
        self.read_misses as f64 * wait_s_per_miss / 60.0 / trace_days
    }
}

/// A side effect of one cache reference, reported through the
/// event-driven API so a closed-loop engine can turn it into device
/// traffic. The open-loop API discards these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// A read miss: `bytes` must be recalled from tape. The file was
    /// inserted with an outstanding fetch unless it bypassed the cache
    /// (larger than the whole cache).
    Fetch {
        /// File being recalled.
        id: FileId,
        /// Bytes to recall.
        bytes: u64,
    },
    /// Eager write-behind scheduled `bytes` of freshly written data for
    /// a background tape flush.
    Writeback {
        /// File whose dirty data is queued for tape.
        id: FileId,
        /// Bytes to flush.
        bytes: u64,
    },
    /// A dirty victim flushed while usage still exceeded the high
    /// watermark — a demand eviction the triggering reference stalls on.
    StallFlush {
        /// Victim file.
        id: FileId,
        /// Bytes flushed.
        bytes: u64,
    },
    /// A dirty victim flushed by the background part of a watermark
    /// purge, below the high watermark on the way to the low one.
    PurgeFlush {
        /// Victim file.
        id: FileId,
        /// Bytes flushed.
        bytes: u64,
    },
    /// A clean victim dropped; no tape traffic results.
    Drop {
        /// Victim file.
        id: FileId,
        /// Bytes freed.
        bytes: u64,
    },
}

/// What a read reference found, as reported by [`DiskCache::read_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadResult {
    /// Resident and fully fetched: servable at disk latency.
    Hit,
    /// Resident but its tape recall is still outstanding: the reference
    /// coalesces onto the in-flight fetch instead of issuing another
    /// (a *delayed hit*).
    DelayedHit,
    /// Not resident: a recall must be issued.
    Miss,
}

impl ReadResult {
    /// True unless the reference missed (both hit flavours count as
    /// hits for miss-ratio purposes).
    pub fn is_resident(self) -> bool {
        !matches!(self, ReadResult::Miss)
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    size: u64,
    last_ref: i64,
    created: i64,
    ref_count: u32,
    dirty: bool,
    /// The tape recall that populated this entry is still in flight;
    /// cleared by [`DiskCache::fetch_complete`].
    fetching: bool,
    next_use: Option<i64>,
    /// Estimated recall wait stamped from the cache's hint at the last
    /// touch; see [`DiskCache::set_est_miss_wait_s`].
    est_miss_wait_s: f64,
}

/// How [`DiskCache`] ranks purge victims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionMode {
    /// Keep an incremental eviction index when the policy advertises an
    /// affine priority ([`MigrationPolicy::affine`]) or a kinetic one
    /// ([`MigrationPolicy::kinetic`]) *and* the resident set is big
    /// enough for the rescan to hurt (the index activates at the first
    /// purge that sees [`INDEX_MIN_RESIDENTS`] files — below that,
    /// sorting a short list beats maintaining a tree). Policies with
    /// neither form fall back to the exact rescan automatically.
    #[default]
    Auto,
    /// Like `Auto` but with no resident-count gate: the index activates
    /// at the very first purge. For tests and benchmarks that want the
    /// indexed path exercised regardless of scale.
    Indexed,
    /// Always rank victims with the full rescan + sort — the pre-index
    /// cost model, kept selectable for benchmarks and as the oracle the
    /// index is property-tested against. The victim sequence is
    /// identical to the other modes by construction.
    Rescan,
}

/// Resident-set size at which [`EvictionMode::Auto`] switches from the
/// rescan to the incremental index. Sorting a few dozen candidates per
/// purge is cheaper than a heap push per reference; re-ranking hundreds
/// or thousands is not.
pub const INDEX_MIN_RESIDENTS: usize = 128;

/// Incremental victim ranking for affine-priority policies.
///
/// Because an affine policy's slope is shared by every file, pairwise
/// priority order never changes with `now`, so a key pushed once stays
/// correct until the entry itself mutates — and mutations just push the
/// new key into a [`VictimRank`] (a monotone queue that self-degrades
/// to a lazy max-heap; see [`crate::rank`]). Stale keys are resolved at
/// pop time against the live entry; occasional compaction squeezes them
/// out. On the monotone fast path (LRU, FIFO) every operation is O(1);
/// the general affine case is amortized `O(log n)` — against the
/// rescan's `O(n log n)` per purge.
#[derive(Debug)]
struct EvictionIndex {
    /// Bit pattern of the policy's shared slope; a differing slope on
    /// any later file is a contract violation that degrades the cache
    /// back to the rescan.
    slope_bits: u64,
    rank: VictimRank<()>,
}

/// Where the cache currently is in the index lifecycle.
#[derive(Debug)]
enum IndexState {
    /// `Auto`/`Indexed` before the activating purge: nothing is
    /// maintained, so purge-free (and small-resident-set) runs pay no
    /// index overhead.
    Unprobed,
    /// The policy proved affine at the activating purge; the index
    /// mirrors the resident set from here on.
    Active(EvictionIndex),
    /// The policy declined `affine()` but shipped a kinetic form at the
    /// activating purge: victims rank through a certificate-carrying
    /// tournament tree instead of the rescan.
    Kinetic(KineticTournament),
    /// Forced ([`EvictionMode::Rescan`]), a policy with neither closed
    /// form, or degraded (slope drift / backwards clock / failed
    /// pop-time validation): every purge does the exact rescan.
    /// Terminal.
    Rescan,
}

/// Builds the evaluation hook a [`KineticTournament`] calls to
/// (re-)score a leaf: dense file index + time → the policy's *true*
/// priority at that time, plus the kinetic form certifying how long a
/// comparison against it stays settled. `None` (entry gone, or the
/// policy refuses the form for this state) makes the tournament report
/// failure, which the caller turns into rescan degradation.
fn kinetic_eval<'a>(
    policy: &'a dyn MigrationPolicy,
    slots: &'a [Option<Entry>],
) -> impl FnMut(u32, i64) -> Option<(f64, KineticForm)> + 'a {
    move |fidx, at| {
        let id = FileId::new(fidx);
        let e = slots.get(id.index())?.as_ref()?;
        let v = view(id, e);
        let form = policy.kinetic(&v, at)?;
        Some((policy.priority(&v, at), form))
    }
}

/// A policy-driven disk cache with arena-backed per-file state.
pub struct DiskCache<'p> {
    config: CacheConfig,
    policy: &'p dyn MigrationPolicy,
    /// Per-file entry arena indexed by [`FileId`]; `None` = not
    /// resident. Slots are reused across an evict/re-create cycle.
    slots: Vec<Option<Entry>>,
    /// Per-slot (re-)creation counter, parallel to `slots`; survives
    /// eviction, so a test can observe that a purge + re-create reused
    /// the slot instead of aliasing the old incarnation.
    epochs: Vec<u32>,
    /// Files currently resident (`slots` is mostly `None` at scale).
    resident: usize,
    usage: u64,
    stats: CacheStats,
    index: IndexState,
    /// `Indexed` mode: activate at the first purge, resident count be
    /// damned.
    eager_index: bool,
    /// Cached [`MigrationPolicy::read_touch_monotone`]: read hits skip
    /// the index push entirely (stale keys only overestimate; the purge
    /// re-pushes current keys as it discovers them).
    skip_read_touch: bool,
    /// Latest reference time seen; the affine forms assume a monotone
    /// clock, so a step backwards degrades the index (see `note_time`).
    max_now: i64,
    /// The miss-latency hint stamped onto entries at every touch; see
    /// [`DiskCache::set_est_miss_wait_s`]. Defaults to `0.0` (no
    /// feedback), under which latency-aware policies degrade to their
    /// latency-blind counterparts exactly.
    est_miss_wait_s: f64,
    /// Rescan-purge scratch: the ranked candidate list is built here so
    /// repeated purges reuse one allocation instead of paying a fresh
    /// `Vec` each time.
    scratch: Vec<(f64, FileId)>,
    /// Failed recall attempts ([`DiskCache::fetch_failed`] calls); kept
    /// outside [`CacheStats`] so degraded runs keep decision counters
    /// byte-identical to healthy ones. See [`DiskCache::fetch_retries`].
    fetch_retries: u64,
}

fn view(id: FileId, e: &Entry) -> FileView {
    FileView {
        id,
        size: e.size,
        last_ref: e.last_ref,
        created: e.created,
        ref_count: e.ref_count,
        next_use: e.next_use,
        est_miss_wait_s: e.est_miss_wait_s,
    }
}

impl<'p> DiskCache<'p> {
    /// Creates an empty cache under the given policy.
    ///
    /// # Panics
    ///
    /// Panics if the watermarks are not `0 < low <= high <= 1`.
    pub fn new(config: CacheConfig, policy: &'p dyn MigrationPolicy) -> Self {
        Self::with_eviction_mode(config, policy, EvictionMode::Auto)
    }

    /// Creates an empty cache with an explicit victim-ranking mode; see
    /// [`EvictionMode`]. [`DiskCache::new`] is `Auto`.
    ///
    /// # Panics
    ///
    /// Panics if the watermarks are not `0 < low <= high <= 1`.
    pub fn with_eviction_mode(
        config: CacheConfig,
        policy: &'p dyn MigrationPolicy,
        mode: EvictionMode,
    ) -> Self {
        assert!(
            config.low_watermark > 0.0
                && config.low_watermark <= config.high_watermark
                && config.high_watermark <= 1.0,
            "bad watermarks {} / {}",
            config.low_watermark,
            config.high_watermark
        );
        DiskCache {
            config,
            policy,
            slots: Vec::new(),
            epochs: Vec::new(),
            resident: 0,
            usage: 0,
            stats: CacheStats::default(),
            index: match mode {
                EvictionMode::Auto | EvictionMode::Indexed => IndexState::Unprobed,
                EvictionMode::Rescan => IndexState::Rescan,
            },
            eager_index: mode == EvictionMode::Indexed,
            skip_read_touch: policy.read_touch_monotone(),
            max_now: i64::MIN,
            est_miss_wait_s: 0.0,
            scratch: Vec::new(),
            fetch_retries: 0,
        }
    }

    /// Pre-sizes the entry arena for a trace known to reference `files`
    /// distinct files (e.g. [`crate::eval::PreparedTrace::file_count`]),
    /// avoiding growth reallocations during replay. Purely an
    /// optimization — the arena grows on demand either way.
    pub fn reserve_files(&mut self, files: usize) {
        if files > self.slots.len() {
            self.slots.resize(files, None);
            self.epochs.resize(files, 0);
        }
    }

    /// Sets the miss-latency hint: the estimated tape-recall wait
    /// (seconds) a miss on the file being referenced *next* would pay.
    /// Every subsequent touch (read hit, write, insert) stamps the
    /// current hint onto the touched entry, where it surfaces to the
    /// policy as [`FileView::est_miss_wait_s`].
    ///
    /// Callers own the estimate because they know the file's tier: the
    /// closed-loop hierarchy engine publishes a live per-(tier,
    /// size-class) EWMA of measured recall waits
    /// ([`crate::feedback::LatencyFeedback`]) before each reference,
    /// while open-loop replay sets the flat
    /// [`crate::eval::EvalConfig::wait_s_per_miss`] fallback once. The
    /// default is `0.0` — zero feedback, under which latency-aware
    /// policies ([`MigrationPolicy::latency_aware`]) rank exactly like
    /// their latency-blind counterparts.
    pub fn set_est_miss_wait_s(&mut self, est: f64) {
        self.est_miss_wait_s = est;
    }

    /// The current miss-latency hint; see
    /// [`DiskCache::set_est_miss_wait_s`].
    pub fn est_miss_wait_s(&self) -> f64 {
        self.est_miss_wait_s
    }

    /// True while the incremental eviction index is ranking victims
    /// (`Auto` mode, affine policy, at least one purge seen).
    pub fn uses_eviction_index(&self) -> bool {
        matches!(self.index, IndexState::Active(_))
    }

    /// True while the kinetic tournament is ranking victims (`Auto`
    /// mode, a policy shipping [`MigrationPolicy::kinetic`] forms, at
    /// least one purge seen).
    pub fn uses_kinetic_index(&self) -> bool {
        matches!(self.index, IndexState::Kinetic(_))
    }

    /// Current bytes resident.
    pub fn usage(&self) -> u64 {
        self.usage
    }

    /// Files resident.
    pub fn len(&self) -> usize {
        self.resident
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.resident == 0
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// True if the file is resident.
    pub fn contains(&self, id: impl Into<FileId>) -> bool {
        self.slot(id.into()).is_some()
    }

    /// Times `id`'s arena slot has been (re-)created, counting the
    /// initial insert: `0` for a file never cached, `1` after its first
    /// insert, `2` after an evict + re-insert, and so on. The counter
    /// survives eviction — it is the observable half of the arena's
    /// slot-reuse invariant (a re-created file occupies the *same* slot
    /// under a fresh epoch; identity never aliases because pop-time
    /// index validation is by value, not by slot generation).
    pub fn slot_epoch(&self, id: impl Into<FileId>) -> u32 {
        self.epochs.get(id.into().index()).copied().unwrap_or(0)
    }

    fn slot(&self, id: FileId) -> Option<&Entry> {
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    /// Processes a read reference; returns `true` on a hit.
    ///
    /// `next_use` is the oracle's answer for Belady-style policies (the
    /// next time this same file will be referenced, if ever).
    ///
    /// This is the open-loop entry point: a miss's fetch completes
    /// instantly, so the cache never holds outstanding-fetch state and
    /// delayed hits cannot occur.
    pub fn read(
        &mut self,
        id: impl Into<FileId>,
        size: u64,
        now: i64,
        next_use: Option<i64>,
    ) -> bool {
        let id = id.into();
        let result = self.read_with(id, size, now, next_use, &mut |_| {});
        if result == ReadResult::Miss {
            self.fetch_complete(id);
        }
        result.is_resident()
    }

    /// Processes a read reference, reporting side effects to `ops`.
    ///
    /// On a miss the file is inserted with an outstanding fetch (see
    /// [`DiskCache::fetch_complete`]) and a [`CacheOp::Fetch`] is
    /// emitted; purges triggered by the insert report their victims.
    /// Makes exactly the hit/miss/eviction decisions [`DiskCache::read`]
    /// would.
    pub fn read_with(
        &mut self,
        id: impl Into<FileId>,
        size: u64,
        now: i64,
        next_use: Option<i64>,
        ops: &mut impl FnMut(CacheOp),
    ) -> ReadResult {
        let id = id.into();
        self.note_time(now);
        let est = self.est_miss_wait_s;
        if let Some(e) = self.slots.get_mut(id.index()).and_then(Option::as_mut) {
            e.last_ref = now;
            e.ref_count += 1;
            e.next_use = next_use;
            e.est_miss_wait_s = est;
            self.stats.read_hits += 1;
            self.stats.read_hit_bytes += e.size;
            let snapshot = *e;
            // Read hits are the hot path: when the policy promises a
            // read touch never raises its intercept, the stale key
            // already in the heap safely overestimates and the push is
            // skipped (the purge repairs lazily).
            if !self.skip_read_touch {
                self.index_upsert(id, snapshot);
            }
            return if snapshot.fetching {
                ReadResult::DelayedHit
            } else {
                ReadResult::Hit
            };
        }
        self.stats.read_misses += 1;
        self.stats.read_miss_bytes += size;
        ops(CacheOp::Fetch { id, bytes: size });
        // Fetch from tape into the cache (clean copy, recall in flight).
        self.insert(id, size, now, false, true, next_use, ops);
        ReadResult::Miss
    }

    /// Processes a write reference; the file lands in the cache dirty.
    ///
    /// Open-loop counterpart of [`DiskCache::write_with`].
    pub fn write(&mut self, id: impl Into<FileId>, size: u64, now: i64, next_use: Option<i64>) {
        self.write_with(id, size, now, next_use, &mut |_| {});
    }

    /// Processes a write reference, reporting side effects to `ops`:
    /// eager write-behind emits [`CacheOp::Writeback`], and any purge
    /// the write triggers reports its victims.
    pub fn write_with(
        &mut self,
        id: impl Into<FileId>,
        size: u64,
        now: i64,
        next_use: Option<i64>,
        ops: &mut impl FnMut(CacheOp),
    ) {
        let id = id.into();
        self.note_time(now);
        self.stats.writes += 1;
        if self.config.eager_writeback {
            self.stats.writeback_bytes += size;
            ops(CacheOp::Writeback { id, bytes: size });
        }
        let est = self.est_miss_wait_s;
        if let Some(e) = self.slots.get_mut(id.index()).and_then(Option::as_mut) {
            let old_size = e.size;
            e.size = size;
            e.last_ref = now;
            e.ref_count += 1;
            e.next_use = next_use;
            e.est_miss_wait_s = est;
            e.dirty = !self.config.eager_writeback;
            let snapshot = *e;
            self.usage = self.usage - old_size + size;
            self.index_upsert(id, snapshot);
            self.maybe_purge(now, ops);
            return;
        }
        let dirty = !self.config.eager_writeback;
        self.insert(id, size, now, dirty, false, next_use, ops);
    }

    /// Marks `id`'s outstanding tape recall as delivered: subsequent
    /// reads are plain hits again. Returns `true` if a fetch was
    /// actually outstanding; no-op (false) when the file is not resident
    /// — it may have been evicted while the recall was in flight, or
    /// bypassed the cache entirely.
    pub fn fetch_complete(&mut self, id: impl Into<FileId>) -> bool {
        match self
            .slots
            .get_mut(id.into().index())
            .and_then(Option::as_mut)
        {
            Some(e) => {
                let was = e.fetching;
                e.fetching = false;
                was
            }
            None => false,
        }
    }

    /// Marks `id`'s tape recall attempt as **failed**: the entry's
    /// outstanding-fetch state is re-armed so reads keep coalescing as
    /// [`ReadResult::DelayedHit`] until a retry finally delivers
    /// ([`DiskCache::fetch_complete`]). Residency, usage, and every
    /// [`CacheStats`] counter are untouched — the space reserved at the
    /// original miss stays reserved across retries, so a fault-injected
    /// replay makes exactly the hit/miss/eviction decisions a
    /// fault-free one does. The failure *is* observable, though: it
    /// bumps the separate [`DiskCache::fetch_retries`] counter, which
    /// lives outside `CacheStats` precisely so degraded and healthy
    /// runs keep byte-identical decision counters while the retry toll
    /// still surfaces (in availability reports and the live service's
    /// degraded accounting).
    ///
    /// Returns `true` if the file is resident (fetch re-armed); `false`
    /// when it was evicted mid-recall or bypassed the cache, where a
    /// retry's delivery will be a no-op too.
    pub fn fetch_failed(&mut self, id: impl Into<FileId>) -> bool {
        self.fetch_retries += 1;
        match self
            .slots
            .get_mut(id.into().index())
            .and_then(Option::as_mut)
        {
            Some(e) => {
                e.fetching = true;
                true
            }
            None => false,
        }
    }

    /// Failed recall attempts reported via [`DiskCache::fetch_failed`]
    /// — one per media read error, whether or not the entry was still
    /// resident. Deliberately **not** part of [`CacheStats`]: the
    /// faults-move-time-never-decisions invariant pins degraded and
    /// healthy `CacheStats` equal, and this counter is exactly the part
    /// of a degraded run that must still be visible. The closed-loop
    /// engine's `DegradedOutcome::read_retries` and this counter agree
    /// by construction; the live daemon (`fmig-serve`) reports it into
    /// the same availability rows simulated runs fill.
    pub fn fetch_retries(&self) -> u64 {
        self.fetch_retries
    }

    #[expect(clippy::too_many_arguments)]
    fn insert(
        &mut self,
        id: FileId,
        size: u64,
        now: i64,
        dirty: bool,
        fetching: bool,
        next_use: Option<i64>,
        ops: &mut impl FnMut(CacheOp),
    ) {
        if size > self.config.capacity {
            // Larger than the whole cache: bypass (tape-direct).
            return;
        }
        let entry = Entry {
            size,
            last_ref: now,
            created: now,
            ref_count: 1,
            dirty,
            fetching,
            next_use,
            est_miss_wait_s: self.est_miss_wait_s,
        };
        if id.index() >= self.slots.len() {
            self.slots.resize(id.index() + 1, None);
            self.epochs.resize(id.index() + 1, 0);
        }
        debug_assert!(self.slots[id.index()].is_none(), "insert over a resident");
        self.slots[id.index()] = Some(entry);
        self.epochs[id.index()] += 1;
        self.resident += 1;
        self.usage += size;
        self.index_upsert(id, entry);
        self.maybe_purge(now, ops);
    }

    /// Tracks clock monotonicity. The affine and kinetic forms the
    /// eviction indexes rely on are only guaranteed for non-decreasing
    /// reference times (see [`MigrationPolicy::affine`] and
    /// [`MigrationPolicy::kinetic`]); a step backwards permanently
    /// degrades this cache to the exact rescan, which is always correct.
    fn note_time(&mut self, now: i64) {
        if now < self.max_now {
            self.index = IndexState::Rescan;
        } else {
            self.max_now = now;
        }
    }

    /// Mirrors one resident entry's mutation into whichever index is
    /// active — an affine key push, or a kinetic leaf upsert — and
    /// degrades to the rescan if the policy withdraws the form or
    /// violates its contract. `e` is the entry's state *after* the
    /// mutation being mirrored; every mutation site stamps
    /// `e.last_ref = now`, so it doubles as the evaluation time for the
    /// kinetic leaf.
    fn index_upsert(&mut self, id: FileId, e: Entry) {
        match &mut self.index {
            IndexState::Active(idx) => match self.policy.affine(&view(id, &e)) {
                Some(a) if a.slope.to_bits() == idx.slope_bits => {
                    idx.rank.push(RankKey {
                        intercept: a.intercept,
                        id: u64::from(id),
                        payload: (),
                    });
                    // Stale keys (older keys of mutated or evicted files)
                    // are resolved at pop time; once they dominate, rebuild
                    // from the resident set so memory and pop cost stay
                    // proportional to it.
                    if idx.rank.len() > self.resident * 2 + 64 {
                        self.index = self.build_index(e.last_ref);
                    }
                }
                _ => self.index = IndexState::Rescan,
            },
            IndexState::Kinetic(t) => {
                let mut eval = kinetic_eval(self.policy, &self.slots);
                let ok = t.upsert(id.raw(), e.last_ref, &mut eval);
                if !ok {
                    self.index = IndexState::Rescan;
                }
            }
            IndexState::Unprobed | IndexState::Rescan => {}
        }
    }

    fn maybe_purge(&mut self, now: i64, ops: &mut impl FnMut(CacheOp)) {
        let high = (self.config.capacity as f64 * self.config.high_watermark) as u64;
        if self.usage <= high {
            return;
        }
        let low = (self.config.capacity as f64 * self.config.low_watermark) as u64;
        // First eligible purge in Auto/Indexed mode: probe the policy
        // and build the index from the resident set, or settle on the
        // rescan. Auto waits for a resident set big enough that the
        // rescan actually hurts; until then the (cheap) rescan runs and
        // no index is maintained.
        if matches!(self.index, IndexState::Unprobed)
            && (self.eager_index || self.resident >= INDEX_MIN_RESIDENTS)
        {
            self.index = self.build_index(now);
        }
        match self.index {
            IndexState::Active(_) => self.purge_indexed(now, high, low, ops),
            IndexState::Kinetic(_) => self.purge_kinetic(now, high, low, ops),
            _ => self.purge_rescan(now, high, low, ops),
        }
    }

    /// Probes the resident set for an index: every file's affine form
    /// first (the cheaper regime), then the kinetic form; a policy that
    /// refuses both — or violates the shared-slope contract — means the
    /// exact rescan (terminal).
    fn build_index(&self, now: i64) -> IndexState {
        if let Some(idx) = self.build_affine_index() {
            return IndexState::Active(idx);
        }
        let files: Vec<u32> = self.residents().map(|(id, _)| id.raw()).collect();
        if files.is_empty() {
            return IndexState::Rescan;
        }
        let mut eval = kinetic_eval(self.policy, &self.slots);
        match KineticTournament::build(&files, now, &mut eval) {
            Some(t) => IndexState::Kinetic(t),
            None => IndexState::Rescan,
        }
    }

    /// Probes every resident file's affine form; `None` on any refusal
    /// or slope disagreement.
    fn build_affine_index(&self) -> Option<EvictionIndex> {
        let mut slope_bits = None;
        let mut keys = Vec::with_capacity(self.resident);
        for (id, e) in self.residents() {
            let a = self.policy.affine(&view(id, e))?;
            if *slope_bits.get_or_insert(a.slope.to_bits()) != a.slope.to_bits() {
                return None;
            }
            keys.push(RankKey {
                intercept: a.intercept,
                id: u64::from(id),
                payload: (),
            });
        }
        slope_bits.map(|slope_bits| EvictionIndex {
            slope_bits,
            rank: VictimRank::from_keys(keys),
        })
    }

    /// Iterates the resident entries in ascending-id (arena) order.
    fn residents(&self) -> impl Iterator<Item = (FileId, &Entry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (FileId::from(i), e)))
    }

    /// Amortized-log purge: pop victims off the incremental index until
    /// usage reaches the low watermark. Because affine order is
    /// time-invariant, the live-element pop sequence equals the rescan's
    /// `(priority desc, id asc)` order at `now` exactly.
    fn purge_indexed(&mut self, now: i64, high: u64, low: u64, ops: &mut impl FnMut(CacheOp)) {
        while self.usage > low {
            let IndexState::Active(idx) = &mut self.index else {
                unreachable!("purge_indexed runs only in Active state");
            };
            // The rank resolves staleness as keys surface: a popped key
            // counts only if the file is still resident with exactly
            // that intercept. Keys only ever overestimate (mutations
            // that can raise a key push eagerly; skipped read-touch
            // pushes only lower it), so deflating stale keys converges
            // on the exact maximum with the id tie-break intact. The
            // value-based check also covers arena slot reuse: a key
            // from a victim's previous incarnation either equals the
            // re-created entry's current intercept (then it is the
            // correct current key) or deflates like any stale key.
            let slope_bits = idx.slope_bits;
            let slots = &self.slots;
            let policy = self.policy;
            let popped = idx.rank.pop_best(|key| {
                let id = FileId::new(key.id as u32);
                match slots.get(id.index()).and_then(Option::as_ref) {
                    None => Candidate::Gone, // evicted since this key was pushed
                    Some(e) => match policy.affine(&view(id, e)) {
                        Some(a)
                            if a.slope.to_bits() == slope_bits
                                && a.intercept.to_bits() == key.intercept.to_bits() =>
                        {
                            Candidate::Live
                        }
                        Some(a) if a.slope.to_bits() == slope_bits => Candidate::Moved(a.intercept),
                        // The policy withdrew the form or moved the slope
                        // mid-run: contract violation.
                        _ => Candidate::Abort,
                    },
                }
            });
            match popped {
                Popped::Victim(key) => self.evict(FileId::new(key.id as u32), now, high, ops),
                // Dry with residents left, or a contract violation:
                // degrade to the always-correct rescan rather than
                // under-purge. Unreachable for well-behaved policies.
                Popped::Dry | Popped::Aborted => {
                    self.index = IndexState::Rescan;
                    self.purge_rescan(now, high, low, ops);
                    return;
                }
            }
        }
    }

    /// Certificate-driven purge: advance the tournament clock (which
    /// replays only subtrees whose certificates expired), then
    /// repeatedly take the root winner — the exact `(priority desc, id
    /// asc)` maximum at `now` by construction, because internal nodes
    /// compare *true* priorities and certificates only schedule
    /// re-checks — and evict it. Mirrors `purge_indexed`'s pop-time
    /// revalidation and degradation story: the cached winner score must
    /// match the live entry bit for bit, a mismatch gets one repair
    /// chance (a leaf re-upsert), and anything persistent aborts to the
    /// always-correct exact rescan.
    fn purge_kinetic(&mut self, now: i64, high: u64, low: u64, ops: &mut impl FnMut(CacheOp)) {
        enum Step {
            Evict(FileId),
            Repaired,
            Degrade,
        }
        // A validation mismatch means a missed leaf update — a bug, not
        // a workload property (every mutation site upserts) — so repairs
        // are bounded and persistent trouble degrades. The step is
        // computed inside the match block so the tournament's `&mut` and
        // the eval hook's slot borrow both end before the cache mutates.
        let mut repairs = 0usize;
        while self.usage > low {
            let step = match &mut self.index {
                IndexState::Kinetic(t) => {
                    debug_assert_eq!(
                        t.len(),
                        self.resident,
                        "tournament mirrors the resident set exactly"
                    );
                    let policy = self.policy;
                    let slots = &self.slots;
                    let mut eval = kinetic_eval(policy, slots);
                    // First iteration pays the real advance; later ones
                    // see every certificate > `now` and return at the
                    // root. Dry with residents left (or an eval refusal)
                    // would under-purge: degrade instead. Unreachable
                    // for well-behaved policies.
                    let winner = if t.advance(now, &mut eval) {
                        t.winner()
                    } else {
                        None
                    };
                    match winner {
                        None => Step::Degrade,
                        Some((fidx, cached, stamp)) => {
                            let id = FileId::new(fidx);
                            // Pop-time revalidation by value, like the
                            // affine index: the winner leaf's cached
                            // score must equal the live entry's score at
                            // the leaf's own evaluation time, bit for
                            // bit. This also covers arena slot reuse — a
                            // re-created file either scores identically
                            // (then the leaf is current) or fails
                            // validation like any stale leaf.
                            let live = slots
                                .get(id.index())
                                .and_then(Option::as_ref)
                                .map(|e| policy.priority(&view(id, e), stamp));
                            match live {
                                Some(p) if p.to_bits() == cached.to_bits() => Step::Evict(id),
                                Some(_) if repairs < 32 => {
                                    repairs += 1;
                                    if t.upsert(fidx, now, &mut eval) {
                                        Step::Repaired
                                    } else {
                                        Step::Degrade
                                    }
                                }
                                _ => Step::Degrade,
                            }
                        }
                    }
                }
                // `evict` degraded mid-purge (a leaf removal's path
                // repair failed); finish this purge on the exact path.
                _ => Step::Degrade,
            };
            match step {
                Step::Evict(id) => self.evict(id, now, high, ops),
                Step::Repaired => {}
                Step::Degrade => {
                    self.index = IndexState::Rescan;
                    self.purge_rescan(now, high, low, ops);
                    return;
                }
            }
        }
    }

    /// The exact fallback: rank every resident file by eviction priority
    /// at `now`, highest first, and evict down to the low watermark.
    fn purge_rescan(&mut self, now: i64, high: u64, low: u64, ops: &mut impl FnMut(CacheOp)) {
        let mut ranked = std::mem::take(&mut self.scratch);
        ranked.clear();
        ranked.extend(
            self.residents()
                .map(|(id, e)| (self.policy.priority(&view(id, e), now), id)),
        );
        // Total order: priority descending, then id ascending. The id
        // tie-break matters — policies produce tied priorities routinely
        // (LRU under equal timestamps, Belady's never-used-again class)
        // and the victim sequence must be reproducible. The arena
        // already iterates in ascending-id order, but the sort must
        // still encode the tie-break to stay a total order.
        // `total_cmp` keeps the sort panic-free even for a NaN priority
        // (NaN ranks above +inf, i.e. leaves first), and the unstable
        // sort is safe because the order is total.
        ranked.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, id) in &ranked {
            if self.usage <= low {
                break;
            }
            self.evict(id, now, high, ops);
        }
        // Hand the allocation back for the next purge.
        self.scratch = ranked;
    }

    /// Shared eviction bookkeeping for all purge paths.
    fn evict(&mut self, id: FileId, now: i64, high: u64, ops: &mut impl FnMut(CacheOp)) {
        // The kinetic tournament mirrors the resident set exactly (no
        // lazy stale keys), so the victim's leaf comes out here; the
        // affine rank's stale keys deflate at pop time instead.
        let degrade = match &mut self.index {
            IndexState::Kinetic(t) => {
                let mut eval = kinetic_eval(self.policy, &self.slots);
                !t.remove(id.raw(), now, &mut eval)
            }
            _ => false,
        };
        if degrade {
            self.index = IndexState::Rescan;
        }
        // Victims chosen while still above the high watermark free
        // space the triggering reference needs *now*: a dirty flush
        // there is a stall. Once back under the high mark the rest
        // of the purge (down to the low mark) is background cleanup.
        let stall = self.usage > high;
        let e = self.slots[id.index()].take().expect("victim is resident");
        self.resident -= 1;
        self.usage -= e.size;
        self.stats.evictions += 1;
        self.stats.evicted_bytes += e.size;
        if e.dirty {
            self.stats.writeback_bytes += e.size;
            if stall {
                self.stats.stall_bytes += e.size;
                ops(CacheOp::StallFlush { id, bytes: e.size });
            } else {
                self.stats.purge_flush_bytes += e.size;
                ops(CacheOp::PurgeFlush { id, bytes: e.size });
            }
        } else {
            ops(CacheOp::Drop { id, bytes: e.size });
        }
    }
}

impl core::fmt::Debug for DiskCache<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DiskCache")
            .field("policy", &self.policy.name())
            .field("usage", &self.usage)
            .field("files", &self.resident)
            .field("indexed", &self.uses_eviction_index())
            .field("kinetic", &self.uses_kinetic_index())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Lru, SmallestFirst, Stp};

    fn cfg(capacity: u64) -> CacheConfig {
        CacheConfig {
            capacity,
            high_watermark: 0.9,
            low_watermark: 0.5,
            eager_writeback: true,
        }
    }

    #[test]
    fn hits_and_misses() {
        let lru = Lru;
        let mut c = DiskCache::new(cfg(1000), &lru);
        assert!(!c.read(1, 100, 0, None)); // cold miss
        assert!(c.read(1, 100, 10, None)); // hit
        assert_eq!(c.stats().read_misses, 1);
        assert_eq!(c.stats().read_hits, 1);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(c.usage(), 100);
        assert!(c.contains(1));
    }

    #[test]
    fn purge_respects_watermarks() {
        let lru = Lru;
        let mut c = DiskCache::new(cfg(1000), &lru);
        for i in 0..10 {
            c.write(i, 100, i as i64, None);
        }
        // Usage crossed 900 (the high watermark); purge to <= 500.
        assert!(c.usage() <= 500, "usage {}", c.usage());
        assert!(c.stats().evictions >= 5);
    }

    #[test]
    fn lru_evicts_oldest() {
        let lru = Lru;
        let mut c = DiskCache::new(cfg(1000), &lru);
        for i in 0..8 {
            c.write(i, 100, i as i64, None);
        }
        // Touch file 0 so it is the most recent.
        assert!(c.read(0, 100, 100, None));
        c.write(99, 200, 101, None); // triggers purge
        assert!(c.contains(0), "recently-touched file evicted");
        assert!(!c.contains(1), "oldest file survived");
    }

    #[test]
    fn smallest_first_keeps_large_files() {
        let p = SmallestFirst;
        let mut c = DiskCache::new(cfg(1000), &p);
        c.write(1, 500, 0, None);
        for i in 2..=5 {
            c.write(i, 100, i as i64, None);
        }
        assert!(c.contains(1), "large file should survive smallest-first");
    }

    #[test]
    fn oversized_files_bypass_the_cache() {
        let lru = Lru;
        let mut c = DiskCache::new(cfg(1000), &lru);
        assert!(!c.read(7, 5000, 0, None));
        assert!(!c.contains(7));
        assert_eq!(c.usage(), 0);
        // A retry is still a miss — the file never becomes resident.
        assert!(!c.read(7, 5000, 1, None));
        assert_eq!(c.stats().read_misses, 2);
    }

    #[test]
    fn lazy_writeback_pays_at_eviction() {
        let lru = Lru;
        let lazy = CacheConfig {
            eager_writeback: false,
            ..cfg(1000)
        };
        let mut c = DiskCache::new(lazy, &lru);
        for i in 0..10 {
            c.write(i, 100, i as i64, None);
        }
        assert!(c.stats().stall_bytes > 0, "dirty evictions must stall");
        // Eager mode never stalls.
        let mut e = DiskCache::new(cfg(1000), &lru);
        for i in 0..10 {
            e.write(i, 100, i as i64, None);
        }
        assert_eq!(e.stats().stall_bytes, 0);
        assert!(e.stats().writeback_bytes >= 1000);
    }

    #[test]
    fn person_minutes_translation() {
        let s = CacheStats {
            read_misses: 100,
            read_hits: 9_900,
            ..CacheStats::default()
        };
        // 100 misses at 60 s over 10 days = 10 person-minutes/day.
        assert!((s.person_minutes_per_day(60.0, 10.0) - 10.0).abs() < 1e-9);
        assert_eq!(s.person_minutes_per_day(60.0, 0.0), 0.0);
    }

    #[test]
    fn stp_beats_smallest_first_on_a_skewed_workload() {
        // A workload with a hot small working set and cold large files:
        // STP should produce fewer misses than smallest-first (which
        // throws away exactly the hot small files).
        let run = |policy: &dyn MigrationPolicy| {
            let mut c = DiskCache::new(cfg(10_000), policy);
            let mut t = 0;
            for round in 0..50 {
                for hot in 0..5 {
                    t += 10;
                    c.read(hot, 500, t, None);
                }
                // A cold large file streams through each round.
                t += 10;
                c.read(1000 + round, 4000, t, None);
            }
            c.stats().miss_ratio()
        };
        let stp = run(&Stp::classic());
        let sf = run(&SmallestFirst);
        assert!(stp < sf, "STP {stp} should beat smallest-first {sf}");
    }

    #[test]
    fn tied_priorities_evict_deterministically() {
        // All files written at the same instant: LRU priorities all tie,
        // so eviction must fall back to the id order, not storage order.
        let run = || {
            let lru = Lru;
            let mut c = DiskCache::new(cfg(1000), &lru);
            for i in 0..10 {
                c.write(i, 100, 42, None);
            }
            let mut survivors: Vec<u64> = (0..10).filter(|&i| c.contains(i)).collect();
            survivors.sort_unstable();
            survivors
        };
        let a = run();
        assert_eq!(a, run());
        assert!(!a.is_empty());
    }

    #[test]
    fn stall_and_purge_flush_bytes_are_pinned_on_a_hand_built_trace() {
        // Ten 100-byte dirty files in a 1000-byte cache (high 900, low
        // 500). The tenth write pushes usage to 1000: evicting file 0
        // happens above the high watermark (stall), files 1..=4 are the
        // background leg of the purge down to 500.
        let lru = Lru;
        let lazy = CacheConfig {
            eager_writeback: false,
            ..cfg(1000)
        };
        let mut c = DiskCache::new(lazy, &lru);
        let mut ops = Vec::new();
        for i in 0..10 {
            c.write_with(i, 100, i as i64, None, &mut |op| ops.push(op));
        }
        assert_eq!(c.stats().stall_bytes, 100);
        assert_eq!(c.stats().purge_flush_bytes, 400);
        assert_eq!(c.stats().writeback_bytes, 500);
        assert_eq!(c.stats().evictions, 5);
        let stalls: Vec<_> = ops
            .iter()
            .filter(|o| matches!(o, CacheOp::StallFlush { .. }))
            .collect();
        let purges: Vec<_> = ops
            .iter()
            .filter(|o| matches!(o, CacheOp::PurgeFlush { .. }))
            .collect();
        assert_eq!(
            stalls,
            [&CacheOp::StallFlush {
                id: FileId::new(0),
                bytes: 100
            }]
        );
        assert_eq!(purges.len(), 4);
        // Eager mode: same trace, everything goes out as writebacks and
        // both eviction-flush counters stay zero.
        let mut e = DiskCache::new(cfg(1000), &lru);
        let mut eops = Vec::new();
        for i in 0..10 {
            e.write_with(i, 100, i as i64, None, &mut |op| eops.push(op));
        }
        assert_eq!(e.stats().stall_bytes, 0);
        assert_eq!(e.stats().purge_flush_bytes, 0);
        assert_eq!(
            eops.iter()
                .filter(|o| matches!(o, CacheOp::Writeback { .. }))
                .count(),
            10
        );
        assert!(eops.iter().any(|o| matches!(o, CacheOp::Drop { .. })));
    }

    #[test]
    fn outstanding_fetches_classify_as_delayed_hits() {
        let lru = Lru;
        let mut c = DiskCache::new(cfg(1000), &lru);
        let mut fetches = Vec::new();
        let r = c.read_with(1, 100, 0, None, &mut |op| fetches.push(op));
        assert_eq!(r, ReadResult::Miss);
        assert_eq!(
            fetches,
            [CacheOp::Fetch {
                id: FileId::new(1),
                bytes: 100
            }]
        );
        // While the recall is in flight, further reads coalesce.
        let r = c.read_with(1, 100, 5, None, &mut |_| {});
        assert_eq!(r, ReadResult::DelayedHit);
        assert!(r.is_resident());
        // Delivery turns them back into plain hits.
        assert!(c.fetch_complete(1));
        assert!(!c.fetch_complete(1), "second completion is a no-op");
        let r = c.read_with(1, 100, 9, None, &mut |_| {});
        assert_eq!(r, ReadResult::Hit);
        // Both hit flavours count as hits: one miss, two hits.
        assert_eq!(c.stats().read_misses, 1);
        assert_eq!(c.stats().read_hits, 2);
        // Unknown / bypassed files complete as no-ops.
        assert!(!c.fetch_complete(999));
    }

    #[test]
    fn fetch_failed_rearms_without_corrupting_residency() {
        let lru = Lru;
        let mut c = DiskCache::new(cfg(1000), &lru);
        assert_eq!(c.read_with(1, 100, 0, None, &mut |_| {}), ReadResult::Miss);
        let before = *c.stats();
        let usage = c.usage();
        // The first attempt fails: the reference keeps coalescing.
        assert!(c.fetch_failed(1));
        assert_eq!(
            c.read_with(1, 100, 2, None, &mut |_| {}),
            ReadResult::DelayedHit
        );
        // A retry fails again after a spurious completion: re-armed.
        assert!(c.fetch_complete(1));
        assert!(c.fetch_failed(1));
        assert_eq!(
            c.read_with(1, 100, 4, None, &mut |_| {}),
            ReadResult::DelayedHit
        );
        // The successful retry finally delivers.
        assert!(c.fetch_complete(1));
        assert_eq!(c.read_with(1, 100, 6, None, &mut |_| {}), ReadResult::Hit);
        // Failure never touched residency or the miss counters.
        assert_eq!(c.usage(), usage);
        assert_eq!(c.stats().read_misses, before.read_misses);
        assert_eq!(c.stats().read_miss_bytes, before.read_miss_bytes);
        assert_eq!(c.stats().evictions, before.evictions);
        // Evicted or bypassed files fail as no-ops, like completion.
        assert!(!c.fetch_failed(999));
    }

    #[test]
    fn open_loop_read_never_leaves_fetches_outstanding() {
        let lru = Lru;
        let mut c = DiskCache::new(cfg(1000), &lru);
        assert!(!c.read(1, 100, 0, None));
        // If read() left the fetch outstanding this would be DelayedHit.
        assert_eq!(c.read_with(1, 100, 5, None, &mut |_| {}), ReadResult::Hit);
    }

    #[test]
    fn event_api_matches_open_loop_decisions() {
        // The same interleaved reference sequence through both APIs must
        // produce identical counters (the closed loop's correctness
        // anchor).
        let lru = Lru;
        let seq: Vec<(bool, u64, u64)> = (0..60)
            .map(|i| ((i % 3) == 0, i % 7, 100 + (i % 5) * 60))
            .collect();
        let mut open = DiskCache::new(cfg(1000), &lru);
        let mut event = DiskCache::new(cfg(1000), &lru);
        for (t, &(write, id, size)) in seq.iter().enumerate() {
            let now = t as i64;
            if write {
                open.write(id, size, now, None);
                event.write_with(id, size, now, None, &mut |_| {});
            } else {
                open.read(id, size, now, None);
                let r = event.read_with(id, size, now, None, &mut |_| {});
                if r == ReadResult::Miss {
                    event.fetch_complete(id);
                }
            }
        }
        assert_eq!(open.stats(), event.stats());
    }

    #[test]
    fn slot_reuse_counts_epochs_and_keeps_identity_fresh() {
        // Create-after-purge regression: a file evicted by a purge and
        // re-created later must reuse its arena slot under a bumped
        // epoch, with the re-created entry starting from fresh state
        // (no ABA onto the evicted incarnation).
        let lru = Lru;
        let mut c = DiskCache::new(cfg(1000), &lru);
        assert_eq!(c.slot_epoch(0), 0, "untouched slot has epoch 0");
        for i in 0..10 {
            c.write(i, 100, i as i64, None);
        }
        // The purge evicted the oldest files; file 0 is gone.
        assert!(!c.contains(0));
        assert_eq!(c.slot_epoch(0), 1, "eviction does not clear the epoch");
        let residents_before = c.len();
        // Re-create file 0: same slot, next epoch, fresh entry state.
        c.write(0, 120, 50, None);
        assert!(c.contains(0));
        assert_eq!(c.slot_epoch(0), 2);
        assert_eq!(c.len(), residents_before + 1);
        // The re-created incarnation is fresh: its ref_count restarted,
        // so an immediately following purge ranks it by the *new*
        // last_ref (t=50, the youngest), not the dead incarnation's.
        for i in 20..26 {
            c.write(i, 100, 60 + i as i64, None);
        }
        assert!(
            c.contains(0),
            "re-created file ranked by its new recency, not its old one"
        );
        // A survivor that never left still sits at epoch 1.
        let survivor = (0..10).find(|&i| i > 0 && c.contains(i));
        if let Some(s) = survivor {
            assert_eq!(c.slot_epoch(s), 1);
        }
    }

    /// Replays one op sequence through an indexed and a rescan cache and
    /// asserts identical side-effect streams, counters, and survivors.
    fn assert_modes_agree(policy: &dyn MigrationPolicy, seq: &[(bool, u64, u64, i64)]) {
        let mut auto = DiskCache::with_eviction_mode(cfg(1000), policy, EvictionMode::Indexed);
        let mut rescan = DiskCache::with_eviction_mode(cfg(1000), policy, EvictionMode::Rescan);
        let mut auto_ops = Vec::new();
        let mut rescan_ops = Vec::new();
        for &(write, id, size, now) in seq {
            if write {
                auto.write_with(id, size, now, None, &mut |op| auto_ops.push(op));
                rescan.write_with(id, size, now, None, &mut |op| rescan_ops.push(op));
            } else {
                auto.read_with(id, size, now, None, &mut |op| auto_ops.push(op));
                rescan.read_with(id, size, now, None, &mut |op| rescan_ops.push(op));
            }
        }
        assert_eq!(auto_ops, rescan_ops, "victim sequences diverged");
        assert_eq!(auto.stats(), rescan.stats());
        let mut survivors: Vec<u64> = (0..200).filter(|&i| auto.contains(i)).collect();
        let rescan_survivors: Vec<u64> = (0..200).filter(|&i| rescan.contains(i)).collect();
        survivors.sort_unstable();
        assert_eq!(survivors, rescan_survivors);
    }

    fn churny_sequence() -> Vec<(bool, u64, u64, i64)> {
        (0..160)
            .map(|i| {
                let id = (i * 7 + i / 11) % 23;
                ((i % 3) == 0, id, 60 + (i % 9) * 45, (i * 5) as i64)
            })
            .collect()
    }

    #[test]
    fn index_activates_for_affine_policies_and_matches_rescan() {
        let lru = Lru;
        assert_modes_agree(&lru, &churny_sequence());
        let mut c = DiskCache::with_eviction_mode(cfg(1000), &lru, EvictionMode::Indexed);
        assert!(!c.uses_eviction_index(), "index is lazy until a purge");
        for i in 0..10 {
            c.write(i, 100, i as i64, None);
        }
        assert!(c.uses_eviction_index(), "LRU purge should activate it");
    }

    #[test]
    fn auto_mode_gates_activation_on_resident_count() {
        // A handful of residents: sorting them is cheaper than heap
        // upkeep, so Auto stays on the rescan...
        let lru = Lru;
        let mut small = DiskCache::new(cfg(1000), &lru);
        for i in 0..10 {
            small.write(i, 100, i as i64, None);
        }
        assert!(small.stats().evictions > 0);
        assert!(!small.uses_eviction_index());
        // ...but once a purge sees INDEX_MIN_RESIDENTS files, the
        // re-rank per purge dominates and the index switches on.
        // 100-byte files, high mark at 0.9 × 200·N bytes: the purge
        // triggers with ~1.8·N residents, comfortably past the gate.
        let roomy = CacheConfig {
            capacity: 200 * INDEX_MIN_RESIDENTS as u64,
            ..cfg(1000)
        };
        let mut big = DiskCache::new(roomy, &lru);
        for i in 0..(3 * INDEX_MIN_RESIDENTS as u64) {
            big.write(i, 100, i as i64, None);
        }
        assert!(big.stats().evictions > 0);
        assert!(big.uses_eviction_index());
    }

    #[test]
    fn time_varying_policies_rank_through_the_kinetic_tournament() {
        let stp = Stp::classic();
        assert_modes_agree(&stp, &churny_sequence());
        let mut c = DiskCache::with_eviction_mode(cfg(1000), &stp, EvictionMode::Indexed);
        for i in 0..10 {
            c.write(i, 100, i as i64, None);
        }
        assert!(c.stats().evictions > 0);
        assert!(!c.uses_eviction_index(), "STP has no affine form");
        assert!(c.uses_kinetic_index(), "STP ships a kinetic form");
    }

    #[test]
    fn kinetic_policies_match_the_rescan_oracle() {
        use crate::policy::{RandomEvict, Saac, StpLat};
        // Crossing-heavy churn with day-scale gaps: a jump every 13 ops
        // carries the replay across RandomEvict reshuffle boundaries and
        // STP crossings, so tournament certificates actually expire
        // mid-run. The offset is non-decreasing in `i`, so the clock
        // stays monotone.
        let mut seq = churny_sequence();
        for (i, op) in seq.iter_mut().enumerate() {
            op.3 += 86_400 * (i as i64 / 13);
        }
        assert_modes_agree(&Stp::classic(), &seq);
        assert_modes_agree(&Stp { exponent: 1.0 }, &seq);
        assert_modes_agree(&Stp { exponent: 2.0 }, &seq);
        assert_modes_agree(&Saac, &seq);
        assert_modes_agree(&RandomEvict { salt: 7 }, &seq);
        assert_modes_agree(&StpLat::classic(), &seq);
    }

    #[test]
    fn kinetic_index_survives_eviction_and_reinsertion() {
        // Drive a kinetic-indexed cache through purge → re-create cycles
        // (arena slot reuse) and check it still matches the rescan.
        let stp = Stp::classic();
        let seq: Vec<(bool, u64, u64, i64)> = (0..240)
            .map(|i| {
                let id = (i * 11 + i / 7) % 9; // small universe: heavy reuse
                ((i % 2) == 0, id, 150 + (i % 5) * 80, (i * 37) as i64)
            })
            .collect();
        assert_modes_agree(&stp, &seq);
        let mut c = DiskCache::with_eviction_mode(cfg(1000), &stp, EvictionMode::Indexed);
        for &(write, id, size, now) in &seq {
            if write {
                c.write(id, size, now, None);
            } else {
                c.read(id, size, now, None);
            }
        }
        assert!(c.uses_kinetic_index(), "kinetic index survives churn");
        assert!((0..9).any(|i| c.slot_epoch(i) > 1), "slots were recycled");
    }

    #[test]
    fn backwards_clock_degrades_the_kinetic_index() {
        let stp = Stp::classic();
        let mut c = DiskCache::with_eviction_mode(cfg(1000), &stp, EvictionMode::Indexed);
        for i in 0..10 {
            c.write(i, 100, 100 + i as i64, None);
        }
        assert!(c.uses_kinetic_index());
        // The kinetic contract assumes a monotone clock; a step
        // backwards drops the tournament for good.
        c.write(50, 100, 5, None);
        assert!(!c.uses_kinetic_index());
        for i in 60..70 {
            c.write(i, 100, 200 + i as i64, None);
        }
        assert!(!c.uses_kinetic_index(), "degradation is terminal");
        let mut seq = churny_sequence();
        seq[80].3 = 0;
        assert_modes_agree(&stp, &seq);
    }

    #[test]
    fn backwards_clock_degrades_to_rescan() {
        let lru = Lru;
        let mut c = DiskCache::with_eviction_mode(cfg(1000), &lru, EvictionMode::Indexed);
        for i in 0..10 {
            c.write(i, 100, 100 + i as i64, None);
        }
        assert!(c.uses_eviction_index());
        // Time steps backwards: the affine contract is void, so the
        // cache must drop the index for good...
        c.write(50, 100, 5, None);
        assert!(!c.uses_eviction_index());
        for i in 60..70 {
            c.write(i, 100, 200 + i as i64, None);
        }
        assert!(!c.uses_eviction_index(), "degradation is terminal");
        // ...and a full replay with such a step still matches the rescan
        // oracle, because both run the same fallback.
        let mut seq = churny_sequence();
        seq[80].3 = 0;
        assert_modes_agree(&lru, &seq);
    }

    #[test]
    fn nan_priorities_no_longer_panic_the_purge() {
        struct NanPolicy;
        impl MigrationPolicy for NanPolicy {
            fn name(&self) -> String {
                "NaN".into()
            }
            fn priority(&self, file: &FileView, _now: i64) -> f64 {
                if file.id.raw().is_multiple_of(2) {
                    f64::NAN
                } else {
                    f64::from(file.id.raw())
                }
            }
        }
        let p = NanPolicy;
        let mut c = DiskCache::new(cfg(1000), &p);
        for i in 0..10 {
            c.write(i, 100, i as i64, None);
        }
        // total_cmp ranks NaN above +inf, so the NaN half leaves first;
        // the point is simply that the purge completes.
        assert!(c.usage() <= 500);
        assert!(c.stats().evictions >= 5);
    }

    #[test]
    #[should_panic(expected = "bad watermarks")]
    fn bad_watermarks_rejected() {
        let lru = Lru;
        let bad = CacheConfig {
            high_watermark: 0.5,
            low_watermark: 0.9,
            ..cfg(100)
        };
        let _ = DiskCache::new(bad, &lru);
    }
}
