//! The incremental victim-ranking structures behind the eviction
//! index: a monotone queue that self-degrades to a lazy max-heap, and a
//! kinetic tournament for time-varying priorities.
//!
//! Affine policies push one key per relevant entry mutation and pop
//! victims in `(intercept desc, id asc)` order with pop-time
//! revalidation against live state. Three structural regimes:
//!
//! * **Monotone queue.** Policies whose keys never rise over time (LRU
//!   pushes `−now`, FIFO pushes `−created = −insert time`) emit pushes
//!   in nonincreasing order, so a plain deque *is* the priority order:
//!   `push_back` and front pops are O(1) — no sift, no comparisons.
//!   This is the regime the replay hot path lives in.
//! * **Lazy max-heap.** The first out-of-order push (Belady's
//!   `next_use`, size keys) converts the deque into a binary heap in
//!   one O(n) heapify, and everything continues with O(log n) ops.
//! * **Kinetic tournament** ([`KineticTournament`]). Policies whose
//!   pairwise order *drifts with the clock* (STP's per-file slope,
//!   SAAC's activity discount, salted-random's day reshuffle, the
//!   latency-aware pair) cannot be keyed once at all — but they ship a
//!   [`crate::policy::KineticForm`] closed-form curve, so each internal
//!   node of a tournament tree caches its winner together with a
//!   *certificate* ([`crate::policy::certify_order`]): the earliest
//!   instant the cached comparison could flip. Advancing the clock
//!   recomputes only subtrees whose certificate minimum has expired;
//!   an entry mutation replays one root-to-leaf path.
//!
//! Staleness is resolved when a key surfaces: the caller's `validate`
//! closure checks the candidate against live state and answers
//! [`Candidate::Live`] (evict it), [`Candidate::Gone`] (file left the
//! cache; drop the key), [`Candidate::Moved`] (resident but the key is
//! a stale overestimate; re-rank at the current, **never higher**,
//! intercept), or [`Candidate::Abort`] (contract violation; the caller
//! degrades to the exact rescan). Because every mutation that could
//! *raise* a key pushes eagerly, a popped maximum is always an upper
//! bound, and deflating stale keys until a live one surfaces yields the
//! exact `(priority desc, id asc)` victim order the sort-based rescan
//! would produce — ties included, since tied keys are compared by id
//! before any is returned.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::policy::{certify_order, KineticForm};

/// One ranked key: a file's affine intercept at push time plus the
/// caller's payload (e.g. a dense file index). Ordered by
/// `(intercept, id desc)` so that a max-structure pops
/// `(intercept desc, id asc)`; the payload never participates.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RankKey<P> {
    pub intercept: f64,
    pub id: u64,
    pub payload: P,
}

impl<P> Ord for RankKey<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.intercept
            .total_cmp(&other.intercept)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl<P> PartialOrd for RankKey<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> PartialEq for RankKey<P> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<P> Eq for RankKey<P> {}

/// The caller's verdict on a candidate key surfacing from the rank.
pub(crate) enum Candidate {
    /// Still resident and the key matches the current intercept bits:
    /// this is the next victim.
    Live,
    /// Not resident any more: discard the key.
    Gone,
    /// Resident, but the key is stale. The argument is the *current*
    /// intercept, which must never exceed the popped key (raising
    /// mutations push eagerly); the rank re-files it and keeps looking.
    Moved(f64),
    /// The policy broke its affine contract: stop, the caller falls
    /// back to the exact rescan.
    Abort,
}

/// Result of one victim search.
pub(crate) enum Popped<P> {
    /// The exact next victim in `(priority desc, id asc)` order.
    Victim(RankKey<P>),
    /// No resident keys remain.
    Dry,
    /// `validate` answered [`Candidate::Abort`].
    Aborted,
}

/// Monotone queue / lazy heap hybrid; see the module docs.
#[derive(Debug)]
pub(crate) struct VictimRank<P> {
    /// Monotone regime: sorted nonincreasing by intercept, ties
    /// contiguous (id order resolved at pop time).
    queue: VecDeque<RankKey<P>>,
    /// Heap regime, entered on the first out-of-order push.
    heap: BinaryHeap<RankKey<P>>,
    monotone: bool,
}

impl<P: Copy> VictimRank<P> {
    /// Builds a rank from an arbitrary key set (index activation and
    /// compaction): sorts once and starts in the monotone regime.
    pub fn from_keys(mut keys: Vec<RankKey<P>>) -> Self {
        keys.sort_unstable_by(|a, b| b.cmp(a));
        VictimRank {
            queue: keys.into(),
            heap: BinaryHeap::new(),
            monotone: true,
        }
    }

    /// Keys currently held, stale ones included — the caller's
    /// compaction trigger compares this against its live count.
    pub fn len(&self) -> usize {
        self.queue.len() + self.heap.len()
    }

    /// Records a (possibly updated) key for `id`.
    pub fn push(&mut self, key: RankKey<P>) {
        if self.monotone {
            match self.queue.back() {
                Some(back) if key.intercept.total_cmp(&back.intercept) == Ordering::Greater => {
                    // First out-of-order push: one O(n) heapify, then
                    // stay in the heap regime.
                    self.heap = std::mem::take(&mut self.queue).into_iter().collect();
                    self.monotone = false;
                    self.heap.push(key);
                }
                _ => self.queue.push_back(key),
            }
        } else {
            self.heap.push(key);
        }
    }

    /// Re-files a deflated key at its sorted position (monotone regime
    /// only). Stale keys deflate toward the *front* region of equal or
    /// older intercepts, so the shift is short in practice.
    fn sorted_insert(&mut self, key: RankKey<P>) {
        let pos = self
            .queue
            .partition_point(|k| k.intercept.total_cmp(&key.intercept) == Ordering::Greater);
        self.queue.insert(pos, key);
    }

    /// Pops the exact next victim, resolving staleness through
    /// `validate`; see [`Candidate`].
    pub fn pop_best(&mut self, mut validate: impl FnMut(&RankKey<P>) -> Candidate) -> Popped<P> {
        if !self.monotone {
            while let Some(top) = self.heap.pop() {
                match validate(&top) {
                    Candidate::Live => return Popped::Victim(top),
                    Candidate::Gone => {}
                    Candidate::Moved(current) => self.heap.push(RankKey {
                        intercept: current,
                        ..top
                    }),
                    Candidate::Abort => return Popped::Aborted,
                }
            }
            return Popped::Dry;
        }
        loop {
            let Some(front) = self.queue.front() else {
                return Popped::Dry;
            };
            let bits = front.intercept.to_bits();
            // Fast path: a lone front key (no intercept tie behind it).
            let tied = self
                .queue
                .get(1)
                .is_some_and(|k| k.intercept.to_bits() == bits);
            if !tied {
                let key = self.queue.pop_front().expect("front exists");
                match validate(&key) {
                    Candidate::Live => return Popped::Victim(key),
                    Candidate::Gone => continue,
                    Candidate::Moved(current) => {
                        self.sorted_insert(RankKey {
                            intercept: current,
                            ..key
                        });
                        continue;
                    }
                    Candidate::Abort => return Popped::Aborted,
                }
            }
            // Tie group: the oracle breaks intercept ties by ascending
            // id, so the whole group must be inspected before any
            // member is returned. Survivors keep their (equal) rank;
            // deflated keys re-file behind the group.
            let mut best: Option<RankKey<P>> = None;
            let mut survivors: Vec<RankKey<P>> = Vec::new();
            let mut moved: Vec<RankKey<P>> = Vec::new();
            while let Some(k) = self.queue.front() {
                if k.intercept.to_bits() != bits {
                    break;
                }
                let key = self.queue.pop_front().expect("front exists");
                match validate(&key) {
                    Candidate::Live => match &mut best {
                        Some(b) if b.id <= key.id => survivors.push(key),
                        _ => {
                            if let Some(prev) = best.replace(key) {
                                survivors.push(prev);
                            }
                        }
                    },
                    Candidate::Gone => {}
                    Candidate::Moved(current) => moved.push(RankKey {
                        intercept: current,
                        ..key
                    }),
                    Candidate::Abort => return Popped::Aborted,
                }
            }
            for key in survivors.into_iter().rev() {
                self.queue.push_front(key);
            }
            for key in moved {
                self.sorted_insert(key);
            }
            if let Some(best) = best {
                return Popped::Victim(best);
            }
        }
    }
}

/// Sentinel leaf slot / winner / file mapping: "none".
const NO_SLOT: u32 = u32::MAX;

/// One internal tournament node: the winning leaf slot of the subtree,
/// the node's *own* certificate (when the cached finalist comparison
/// could flip), and the minimum expiry over the whole subtree. The
/// subtree minimum lets [`KineticTournament::advance`] skip every
/// subtree whose cached comparisons are still guaranteed; keeping the
/// own certificate separate lets both `advance` and a reseat *recombine*
/// a node — refresh `min_expiry` from stored fields with zero policy
/// evaluations — whenever its finalist pair is known to be unchanged.
#[derive(Debug, Clone, Copy)]
struct KNode {
    winner: u32,
    own_expiry: i64,
    min_expiry: i64,
}

const EMPTY_NODE: KNode = KNode {
    winner: NO_SLOT,
    own_expiry: i64::MAX,
    min_expiry: i64::MAX,
};

/// One leaf: a resident file's dense index, its priority and kinetic
/// form as of `stamp`. Leaves refresh lazily — only when a recompute
/// actually compares them at a newer time.
#[derive(Debug, Clone, Copy)]
struct KLeaf {
    file: u32,
    priority: f64,
    form: KineticForm,
    stamp: i64,
}

const EMPTY_LEAF: KLeaf = KLeaf {
    file: NO_SLOT,
    priority: 0.0,
    form: KineticForm::PiecewiseConstant { until: i64::MAX },
    stamp: i64::MIN,
};

/// A kinetic tournament over the resident set: an implicit perfect
/// binary tree whose internal nodes cache `(winner, certificate)` pairs
/// (see the module docs for the regime overview).
///
/// The caller supplies one `eval` closure mapping a dense file index
/// and a time to `(priority, kinetic form)` — the *true*
/// [`crate::policy::MigrationPolicy::priority`] value, which is all the
/// tournament ever compares (forms only schedule re-checks), so the
/// winner sequence is bit-identical to the rescan's
/// `(priority desc, id asc)` order by construction. `eval` returning
/// `None` (entry missing, policy refusing a form) makes the mutating
/// call answer `false`: the caller must discard the tournament and
/// degrade to the exact rescan, mirroring [`Candidate::Abort`].
///
/// Layout: `tree.len() == leaves.len() == cap`, a power of two;
/// `tree[0]` is unused, the root is `tree[1]`, node `i`'s children are
/// `2i`/`2i+1`, and a child index `c ≥ cap` denotes leaf `c − cap`.
#[derive(Debug)]
pub(crate) struct KineticTournament {
    tree: Vec<KNode>,
    leaves: Vec<KLeaf>,
    /// Dense file index → leaf slot ([`NO_SLOT`] when untracked).
    slot_of: Vec<u32>,
    free: Vec<u32>,
    len: usize,
    now: i64,
}

impl KineticTournament {
    /// An empty tournament with room for `n` leaves before growing.
    pub fn with_capacity(n: usize) -> Self {
        let cap = n.next_power_of_two().max(2);
        KineticTournament {
            tree: vec![EMPTY_NODE; cap],
            leaves: vec![EMPTY_LEAF; cap],
            slot_of: Vec::new(),
            free: (0..cap as u32).rev().collect(),
            len: 0,
            now: i64::MIN,
        }
    }

    /// Builds over a resident set in one bottom-up O(n) pass. `None`
    /// if the policy refuses a form for any resident.
    pub fn build(
        files: &[u32],
        now: i64,
        eval: &mut impl FnMut(u32, i64) -> Option<(f64, KineticForm)>,
    ) -> Option<Self> {
        let mut t = Self::with_capacity(files.len());
        t.now = now;
        for &f in files {
            let slot = t.free.pop().expect("capacity covers the build set");
            let (priority, form) = eval(f, now)?;
            t.leaves[slot as usize] = KLeaf {
                file: f,
                priority,
                form,
                stamp: now,
            };
            let fi = f as usize;
            if fi >= t.slot_of.len() {
                t.slot_of.resize(fi + 1, NO_SLOT);
            }
            debug_assert_eq!(t.slot_of[fi], NO_SLOT, "duplicate file in build set");
            t.slot_of[fi] = slot;
        }
        t.len = files.len();
        let mut ok = true;
        t.rebuild(now, eval, &mut ok);
        ok.then_some(t)
    }

    /// Tracked (resident) leaves.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Moves the tournament clock to `now`, replaying exactly the
    /// subtrees whose certificates have expired. `false` aborts (see
    /// the type docs).
    pub fn advance(
        &mut self,
        now: i64,
        eval: &mut impl FnMut(u32, i64) -> Option<(f64, KineticForm)>,
    ) -> bool {
        debug_assert!(now >= self.now, "kinetic clocks are monotone");
        self.now = now;
        let mut ok = true;
        self.advance_node(1, now, eval, &mut ok);
        ok
    }

    /// Inserts or re-evaluates one file (any entry mutation: touch,
    /// resize, insert), replaying its root-to-leaf path.
    pub fn upsert(
        &mut self,
        file: u32,
        now: i64,
        eval: &mut impl FnMut(u32, i64) -> Option<(f64, KineticForm)>,
    ) -> bool {
        let fi = file as usize;
        if fi >= self.slot_of.len() {
            self.slot_of.resize(fi + 1, NO_SLOT);
        }
        let mut ok = true;
        let slot = match self.slot_of[fi] {
            NO_SLOT => {
                let slot = match self.free.pop() {
                    Some(s) => s,
                    None => {
                        self.grow(now, eval, &mut ok);
                        if !ok {
                            return false;
                        }
                        self.free.pop().expect("grow doubles the leaf space")
                    }
                };
                self.slot_of[fi] = slot;
                self.len += 1;
                slot
            }
            s => s,
        };
        match eval(file, now) {
            Some((priority, form)) => {
                self.leaves[slot as usize] = KLeaf {
                    file,
                    priority,
                    form,
                    stamp: now,
                };
            }
            None => return false,
        }
        self.reseat(slot, now, eval, &mut ok);
        ok
    }

    /// Unregisters an evicted file, replaying its root-to-leaf path.
    /// Unknown files are a no-op (`true`).
    pub fn remove(
        &mut self,
        file: u32,
        now: i64,
        eval: &mut impl FnMut(u32, i64) -> Option<(f64, KineticForm)>,
    ) -> bool {
        let Some(&slot) = self.slot_of.get(file as usize) else {
            return true;
        };
        if slot == NO_SLOT {
            return true;
        }
        self.slot_of[file as usize] = NO_SLOT;
        self.leaves[slot as usize] = EMPTY_LEAF;
        self.free.push(slot);
        self.len -= 1;
        let mut ok = true;
        self.reseat(slot, now, eval, &mut ok);
        ok
    }

    /// The overall winner as `(file, cached priority, eval stamp)` —
    /// the exact next victim in `(priority desc, id asc)` order,
    /// provided [`KineticTournament::advance`] has been called at the
    /// query time. The cached priority is the policy's value *at
    /// `stamp`* (≤ the query time): certificates freeze comparison
    /// outcomes, not values.
    pub fn winner(&self) -> Option<(u32, f64, i64)> {
        let w = self.tree[1].winner;
        if w == NO_SLOT {
            return None;
        }
        let leaf = self.leaves[w as usize];
        Some((leaf.file, leaf.priority, leaf.stamp))
    }

    /// `(winner slot, subtree min expiry)` of child position `c`.
    fn child_state(&self, c: usize) -> (u32, i64) {
        if c < self.tree.len() {
            let n = self.tree[c];
            (n.winner, n.min_expiry)
        } else {
            let s = c - self.tree.len();
            let w = if self.leaves[s].file != NO_SLOT {
                s as u32
            } else {
                NO_SLOT
            };
            (w, i64::MAX)
        }
    }

    /// Re-evaluates a leaf if its cached value predates `now`.
    fn refresh(
        &mut self,
        slot: u32,
        now: i64,
        eval: &mut impl FnMut(u32, i64) -> Option<(f64, KineticForm)>,
        ok: &mut bool,
    ) {
        let leaf = &mut self.leaves[slot as usize];
        if leaf.stamp == now || leaf.file == NO_SLOT {
            return;
        }
        match eval(leaf.file, now) {
            Some((priority, form)) => {
                leaf.priority = priority;
                leaf.form = form;
                leaf.stamp = now;
            }
            None => *ok = false,
        }
    }

    /// Recomputes one internal node from its (current) children:
    /// refresh both finalists to `now`, compare true priorities with
    /// the ascending-id tie-break, certify the outcome.
    fn recompute(
        &mut self,
        i: usize,
        now: i64,
        eval: &mut impl FnMut(u32, i64) -> Option<(f64, KineticForm)>,
        ok: &mut bool,
    ) {
        if !*ok {
            return;
        }
        let (lw, lm) = self.child_state(2 * i);
        let (rw, rm) = self.child_state(2 * i + 1);
        let (winner, own) = match (lw, rw) {
            (NO_SLOT, NO_SLOT) => (NO_SLOT, i64::MAX),
            (w, NO_SLOT) | (NO_SLOT, w) => (w, i64::MAX),
            (a, b) => {
                self.refresh(a, now, eval, ok);
                self.refresh(b, now, eval, ok);
                if !*ok {
                    return;
                }
                let (la, lb) = (self.leaves[a as usize], self.leaves[b as usize]);
                let a_wins = match la.priority.total_cmp(&lb.priority) {
                    Ordering::Greater => true,
                    Ordering::Less => false,
                    Ordering::Equal => la.file < lb.file,
                };
                let (slot, w, l) = if a_wins { (a, la, lb) } else { (b, lb, la) };
                (
                    slot,
                    certify_order(&w.form, w.priority, &l.form, l.priority, now),
                )
            }
        };
        self.tree[i] = KNode {
            winner,
            own_expiry: own,
            min_expiry: own.min(lm).min(rm),
        };
    }

    /// Refreshes a node's subtree minimum from stored fields alone —
    /// the no-eval counterpart of [`KineticTournament::recompute`],
    /// sound whenever the node's finalist pair (both child winners,
    /// forms included) is unchanged since its own certificate was cut.
    fn recombine(&mut self, i: usize) {
        let (_, lm) = self.child_state(2 * i);
        let (_, rm) = self.child_state(2 * i + 1);
        let n = &mut self.tree[i];
        n.min_expiry = n.own_expiry.min(lm).min(rm);
    }

    /// Replays expired subtrees below `i`; answers whether the
    /// subtree's presented winner changed, so the parent can recombine
    /// instead of recomputing when its own certificate still stands and
    /// both children came back unchanged.
    fn advance_node(
        &mut self,
        i: usize,
        now: i64,
        eval: &mut impl FnMut(u32, i64) -> Option<(f64, KineticForm)>,
        ok: &mut bool,
    ) -> bool {
        if !*ok || self.tree[i].min_expiry > now {
            return false;
        }
        let l = 2 * i;
        let mut child_changed = false;
        if l < self.tree.len() {
            child_changed |= self.advance_node(l, now, eval, ok);
            child_changed |= self.advance_node(l + 1, now, eval, ok);
        }
        if !*ok {
            return false;
        }
        let old = self.tree[i].winner;
        if child_changed || self.tree[i].own_expiry <= now {
            self.recompute(i, now, eval, ok);
        } else {
            self.recombine(i);
        }
        self.tree[i].winner != old
    }

    /// Replays the root-to-leaf path above `slot`. Once the mutated
    /// leaf has lost and a recomputed node presents the same winner as
    /// before, the mutation can no longer influence any ancestor's
    /// finalist pair — the remaining path only recombines subtree
    /// minima, with zero policy evaluations. (Fresh inserts under
    /// age-based policies start at priority ~0 and lose at the first
    /// comparison, making the common insert near-O(1) in evals.)
    fn reseat(
        &mut self,
        slot: u32,
        now: i64,
        eval: &mut impl FnMut(u32, i64) -> Option<(f64, KineticForm)>,
        ok: &mut bool,
    ) {
        let mut i = (self.tree.len() + slot as usize) / 2;
        let mut settled = false;
        while i >= 1 {
            if settled {
                self.recombine(i);
            } else {
                let old = self.tree[i].winner;
                self.recompute(i, now, eval, ok);
                if !*ok {
                    return;
                }
                // `old != slot` matters: if the mutated leaf itself
                // stays the winner, ancestor certificates were cut
                // against its *old* form and must be recut.
                settled = self.tree[i].winner == old && old != slot;
            }
            i /= 2;
        }
    }

    /// Doubles the leaf space and rebuilds bottom-up.
    fn grow(
        &mut self,
        now: i64,
        eval: &mut impl FnMut(u32, i64) -> Option<(f64, KineticForm)>,
        ok: &mut bool,
    ) {
        let cap = self.tree.len() * 2;
        self.leaves.resize(cap, EMPTY_LEAF);
        for s in (cap / 2..cap).rev() {
            self.free.push(s as u32);
        }
        self.tree = vec![EMPTY_NODE; cap];
        self.rebuild(now, eval, ok);
    }

    fn rebuild(
        &mut self,
        now: i64,
        eval: &mut impl FnMut(u32, i64) -> Option<(f64, KineticForm)>,
        ok: &mut bool,
    ) {
        for i in (1..self.tree.len()).rev() {
            self.recompute(i, now, eval, ok);
            if !*ok {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(intercept: f64, id: u64) -> RankKey<()> {
        RankKey {
            intercept,
            id,
            payload: (),
        }
    }

    /// Pops everything, validating against a "current" table: ids
    /// absent are Gone, ids whose value differs are Moved.
    fn drain(rank: &mut VictimRank<()>, current: &mut Vec<(u64, f64)>) -> Vec<u64> {
        let mut out = Vec::new();
        loop {
            let popped = rank.pop_best(|k| match current.iter().find(|(id, _)| *id == k.id) {
                None => Candidate::Gone,
                Some(&(_, v)) if v.to_bits() == k.intercept.to_bits() => Candidate::Live,
                Some(&(_, v)) => Candidate::Moved(v),
            });
            match popped {
                Popped::Victim(k) => {
                    current.retain(|(id, _)| *id != k.id);
                    out.push(k.id);
                }
                Popped::Dry => return out,
                Popped::Aborted => panic!("no abort in this test"),
            }
        }
    }

    #[test]
    fn monotone_pushes_pop_in_priority_order_with_id_ties() {
        let mut rank = VictimRank::from_keys(Vec::new());
        // Nonincreasing pushes, with an intercept tie (ids 7 and 3).
        for (v, id) in [(9.0, 1), (5.0, 7), (5.0, 3), (2.0, 2)] {
            rank.push(key(v, id));
        }
        assert!(rank.monotone);
        let mut current = vec![(1, 9.0), (7, 5.0), (3, 5.0), (2, 2.0)];
        assert_eq!(drain(&mut rank, &mut current), [1, 3, 7, 2]);
    }

    #[test]
    fn out_of_order_push_degrades_to_heap_and_stays_exact() {
        let mut rank = VictimRank::from_keys(Vec::new());
        rank.push(key(5.0, 1));
        rank.push(key(9.0, 2)); // violates monotonicity
        assert!(!rank.monotone);
        rank.push(key(7.0, 3));
        let mut current = vec![(1, 5.0), (2, 9.0), (3, 7.0)];
        assert_eq!(drain(&mut rank, &mut current), [2, 3, 1]);
    }

    #[test]
    fn stale_keys_deflate_and_refile() {
        let mut rank = VictimRank::from_keys(Vec::new());
        rank.push(key(9.0, 1));
        rank.push(key(8.0, 2));
        // id 1 was touched since: its live value is now 3.0, so id 2
        // must pop first, then the deflated id 1.
        let mut current = vec![(1, 3.0), (2, 8.0)];
        assert_eq!(drain(&mut rank, &mut current), [2, 1]);
    }

    #[test]
    fn gone_and_duplicate_keys_are_skipped() {
        let mut rank = VictimRank::from_keys(Vec::new());
        rank.push(key(9.0, 1));
        rank.push(key(9.0, 1)); // duplicate push, same value
        rank.push(key(4.0, 2));
        let mut current = vec![(1, 9.0), (2, 4.0)];
        assert_eq!(drain(&mut rank, &mut current), [1, 2]);
    }

    #[test]
    fn from_keys_sorts_and_restores_the_monotone_regime() {
        let rank: VictimRank<()> =
            VictimRank::from_keys(vec![key(1.0, 9), key(7.0, 2), key(4.0, 5)]);
        assert!(rank.monotone);
        assert_eq!(rank.len(), 3);
        let mut rank = rank;
        let mut current = vec![(9, 1.0), (2, 7.0), (5, 4.0)];
        assert_eq!(drain(&mut rank, &mut current), [2, 5, 9]);
    }

    #[test]
    fn abort_propagates() {
        let mut rank = VictimRank::from_keys(Vec::new());
        rank.push(key(1.0, 1));
        match rank.pop_best(|_| Candidate::Abort) {
            Popped::Aborted => {}
            _ => panic!("expected abort"),
        }
    }
}

#[cfg(test)]
mod kinetic_tests {
    use super::*;
    use crate::policy::{FileView, MigrationPolicy, RandomEvict, Saac, Stp, StpLat};
    use fmig_trace::FileId;

    fn view(id: u32, size: u64, last_ref: i64, ref_count: u32) -> FileView {
        FileView {
            id: FileId::new(id),
            size,
            last_ref,
            created: 0,
            ref_count,
            next_use: None,
            est_miss_wait_s: 4.0,
        }
    }

    /// The rescan oracle: argmax by `(priority desc, id asc)`.
    fn naive_best(p: &dyn MigrationPolicy, state: &[Option<FileView>], now: i64) -> Option<u32> {
        state
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (p.priority(v, now), i as u32)))
            .max_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)))
            .map(|(_, i)| i)
    }

    /// Drives one policy through a deterministic churn of advances,
    /// touches, inserts, and winner evictions, asserting the tournament
    /// winner equals the rescan argmax at every step.
    fn churn_matches_rescan(p: &dyn MigrationPolicy, steps: usize) {
        let universe = 48u32;
        let mut state: Vec<Option<FileView>> = (0..universe)
            .map(|i| {
                Some(view(
                    i,
                    1 + (i as u64 * 7919) % 100_000,
                    (i as i64 * 131) % 900,
                    1 + i % 5,
                ))
            })
            .collect();
        let files: Vec<u32> = (0..universe).collect();
        let mut rng = 0x9E37_79B9_u64;
        let mut step_rng = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut now = 900i64;
        let mut t = {
            let mut eval = |f: u32, at: i64| {
                let v = state[f as usize].as_ref()?;
                Some((p.priority(v, at), p.kinetic(v, at)?))
            };
            KineticTournament::build(&files, now, &mut eval).expect("suite policies have forms")
        };
        for step in 0..steps {
            // Jumps both short (crossing-heavy) and day-scale.
            now += match step_rng() % 7 {
                0 => 0,
                1..=4 => (step_rng() % 13) as i64,
                5 => 977,
                _ => 86_400 / 2,
            };
            {
                let mut eval = |f: u32, at: i64| {
                    let v = state[f as usize].as_ref()?;
                    Some((p.priority(v, at), p.kinetic(v, at)?))
                };
                assert!(t.advance(now, &mut eval));
            }
            assert_eq!(
                t.winner().map(|(f, _, _)| f),
                naive_best(p, &state, now),
                "{}: winner diverged at step {step}, now {now}",
                p.name()
            );
            match step_rng() % 4 {
                0 => {
                    // Touch a random resident file.
                    let f = (step_rng() % universe as u64) as u32;
                    if let Some(v) = state[f as usize].as_mut() {
                        v.last_ref = now;
                        v.ref_count += 1;
                        let mut eval = |f: u32, at: i64| {
                            let v = state[f as usize].as_ref()?;
                            Some((p.priority(v, at), p.kinetic(v, at)?))
                        };
                        assert!(t.upsert(f, now, &mut eval));
                    }
                }
                1 => {
                    // Evict the winner (the purge path).
                    if let Some((f, _, _)) = t.winner() {
                        state[f as usize] = None;
                        let mut eval = |f: u32, at: i64| {
                            let v = state[f as usize].as_ref()?;
                            Some((p.priority(v, at), p.kinetic(v, at)?))
                        };
                        assert!(t.remove(f, now, &mut eval));
                    }
                }
                2 => {
                    // (Re)insert a file, possibly beyond the original
                    // universe to force growth.
                    let f = (step_rng() % (universe as u64 + 16)) as u32;
                    if state.len() <= f as usize {
                        state.resize(f as usize + 1, None);
                    }
                    state[f as usize] = Some(view(f, 1 + (step_rng() % 1_000_000), now, 1));
                    let mut eval = |f: u32, at: i64| {
                        let v = state[f as usize].as_ref()?;
                        Some((p.priority(v, at), p.kinetic(v, at)?))
                    };
                    assert!(t.upsert(f, now, &mut eval));
                }
                _ => {}
            }
            assert_eq!(
                t.winner().map(|(f, _, _)| f),
                naive_best(p, &state, now),
                "{}: winner diverged after mutation at step {step}",
                p.name()
            );
        }
    }

    #[test]
    fn tournament_matches_rescan_for_stp() {
        churn_matches_rescan(&Stp::classic(), 300);
        churn_matches_rescan(&Stp { exponent: 1.0 }, 300);
    }

    #[test]
    fn tournament_matches_rescan_for_saac() {
        churn_matches_rescan(&Saac, 300);
    }

    #[test]
    fn tournament_matches_rescan_for_random_evict() {
        churn_matches_rescan(&RandomEvict { salt: 0xA5A5 }, 300);
    }

    #[test]
    fn tournament_matches_rescan_for_stp_lat() {
        churn_matches_rescan(&StpLat::classic(), 300);
    }

    #[test]
    fn eval_refusal_aborts() {
        let p = Stp::classic();
        let state = [Some(view(0, 10, 0, 1)), Some(view(1, 20, 0, 1))];
        let mut t = {
            let mut eval = |f: u32, at: i64| {
                let v = state[f as usize].as_ref()?;
                Some((p.priority(v, at), p.kinetic(v, at)?))
            };
            KineticTournament::build(&[0, 1], 0, &mut eval).unwrap()
        };
        // An eval that refuses mid-advance must surface as `false`.
        assert!(!t.advance(1, &mut |_, _| None));
    }

    #[test]
    fn draining_every_winner_yields_the_full_rescan_sequence() {
        let p = Stp::classic();
        let mut state: Vec<Option<FileView>> = (0..33u32)
            .map(|i| Some(view(i, 1 + (i as u64 * 37) % 500, (i as i64 * 17) % 200, 1)))
            .collect();
        let files: Vec<u32> = (0..33).collect();
        let now = 200;
        let mut expected = Vec::new();
        {
            let mut s = state.clone();
            while let Some(f) = naive_best(&p, &s, now) {
                expected.push(f);
                s[f as usize] = None;
            }
        }
        let mut t = {
            let mut eval = |f: u32, at: i64| {
                let v = state[f as usize].as_ref()?;
                Some((p.priority(v, at), p.kinetic(v, at)?))
            };
            KineticTournament::build(&files, now, &mut eval).unwrap()
        };
        let mut got = Vec::new();
        while let Some((f, _, _)) = t.winner() {
            got.push(f);
            state[f as usize] = None;
            let mut eval = |f: u32, at: i64| {
                let v = state[f as usize].as_ref()?;
                Some((p.priority(v, at), p.kinetic(v, at)?))
            };
            assert!(t.remove(f, now, &mut eval));
        }
        assert_eq!(got, expected);
        assert_eq!(t.len(), 0);
    }
}
