//! The incremental victim-ranking structure behind the eviction index:
//! a monotone queue that self-degrades to a lazy max-heap.
//!
//! Affine policies push one key per relevant entry mutation and pop
//! victims in `(intercept desc, id asc)` order with pop-time
//! revalidation against live state. Two structural regimes:
//!
//! * **Monotone queue.** Policies whose keys never rise over time (LRU
//!   pushes `−now`, FIFO pushes `−created = −insert time`) emit pushes
//!   in nonincreasing order, so a plain deque *is* the priority order:
//!   `push_back` and front pops are O(1) — no sift, no comparisons.
//!   This is the regime the replay hot path lives in.
//! * **Lazy max-heap.** The first out-of-order push (Belady's
//!   `next_use`, size keys) converts the deque into a binary heap in
//!   one O(n) heapify, and everything continues with O(log n) ops.
//!
//! Staleness is resolved when a key surfaces: the caller's `validate`
//! closure checks the candidate against live state and answers
//! [`Candidate::Live`] (evict it), [`Candidate::Gone`] (file left the
//! cache; drop the key), [`Candidate::Moved`] (resident but the key is
//! a stale overestimate; re-rank at the current, **never higher**,
//! intercept), or [`Candidate::Abort`] (contract violation; the caller
//! degrades to the exact rescan). Because every mutation that could
//! *raise* a key pushes eagerly, a popped maximum is always an upper
//! bound, and deflating stale keys until a live one surfaces yields the
//! exact `(priority desc, id asc)` victim order the sort-based rescan
//! would produce — ties included, since tied keys are compared by id
//! before any is returned.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// One ranked key: a file's affine intercept at push time plus the
/// caller's payload (e.g. a dense file index). Ordered by
/// `(intercept, id desc)` so that a max-structure pops
/// `(intercept desc, id asc)`; the payload never participates.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RankKey<P> {
    pub intercept: f64,
    pub id: u64,
    pub payload: P,
}

impl<P> Ord for RankKey<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.intercept
            .total_cmp(&other.intercept)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl<P> PartialOrd for RankKey<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> PartialEq for RankKey<P> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<P> Eq for RankKey<P> {}

/// The caller's verdict on a candidate key surfacing from the rank.
pub(crate) enum Candidate {
    /// Still resident and the key matches the current intercept bits:
    /// this is the next victim.
    Live,
    /// Not resident any more: discard the key.
    Gone,
    /// Resident, but the key is stale. The argument is the *current*
    /// intercept, which must never exceed the popped key (raising
    /// mutations push eagerly); the rank re-files it and keeps looking.
    Moved(f64),
    /// The policy broke its affine contract: stop, the caller falls
    /// back to the exact rescan.
    Abort,
}

/// Result of one victim search.
pub(crate) enum Popped<P> {
    /// The exact next victim in `(priority desc, id asc)` order.
    Victim(RankKey<P>),
    /// No resident keys remain.
    Dry,
    /// `validate` answered [`Candidate::Abort`].
    Aborted,
}

/// Monotone queue / lazy heap hybrid; see the module docs.
#[derive(Debug)]
pub(crate) struct VictimRank<P> {
    /// Monotone regime: sorted nonincreasing by intercept, ties
    /// contiguous (id order resolved at pop time).
    queue: VecDeque<RankKey<P>>,
    /// Heap regime, entered on the first out-of-order push.
    heap: BinaryHeap<RankKey<P>>,
    monotone: bool,
}

impl<P: Copy> VictimRank<P> {
    /// Builds a rank from an arbitrary key set (index activation and
    /// compaction): sorts once and starts in the monotone regime.
    pub fn from_keys(mut keys: Vec<RankKey<P>>) -> Self {
        keys.sort_unstable_by(|a, b| b.cmp(a));
        VictimRank {
            queue: keys.into(),
            heap: BinaryHeap::new(),
            monotone: true,
        }
    }

    /// Keys currently held, stale ones included — the caller's
    /// compaction trigger compares this against its live count.
    pub fn len(&self) -> usize {
        self.queue.len() + self.heap.len()
    }

    /// Records a (possibly updated) key for `id`.
    pub fn push(&mut self, key: RankKey<P>) {
        if self.monotone {
            match self.queue.back() {
                Some(back) if key.intercept.total_cmp(&back.intercept) == Ordering::Greater => {
                    // First out-of-order push: one O(n) heapify, then
                    // stay in the heap regime.
                    self.heap = std::mem::take(&mut self.queue).into_iter().collect();
                    self.monotone = false;
                    self.heap.push(key);
                }
                _ => self.queue.push_back(key),
            }
        } else {
            self.heap.push(key);
        }
    }

    /// Re-files a deflated key at its sorted position (monotone regime
    /// only). Stale keys deflate toward the *front* region of equal or
    /// older intercepts, so the shift is short in practice.
    fn sorted_insert(&mut self, key: RankKey<P>) {
        let pos = self
            .queue
            .partition_point(|k| k.intercept.total_cmp(&key.intercept) == Ordering::Greater);
        self.queue.insert(pos, key);
    }

    /// Pops the exact next victim, resolving staleness through
    /// `validate`; see [`Candidate`].
    pub fn pop_best(&mut self, mut validate: impl FnMut(&RankKey<P>) -> Candidate) -> Popped<P> {
        if !self.monotone {
            while let Some(top) = self.heap.pop() {
                match validate(&top) {
                    Candidate::Live => return Popped::Victim(top),
                    Candidate::Gone => {}
                    Candidate::Moved(current) => self.heap.push(RankKey {
                        intercept: current,
                        ..top
                    }),
                    Candidate::Abort => return Popped::Aborted,
                }
            }
            return Popped::Dry;
        }
        loop {
            let Some(front) = self.queue.front() else {
                return Popped::Dry;
            };
            let bits = front.intercept.to_bits();
            // Fast path: a lone front key (no intercept tie behind it).
            let tied = self
                .queue
                .get(1)
                .is_some_and(|k| k.intercept.to_bits() == bits);
            if !tied {
                let key = self.queue.pop_front().expect("front exists");
                match validate(&key) {
                    Candidate::Live => return Popped::Victim(key),
                    Candidate::Gone => continue,
                    Candidate::Moved(current) => {
                        self.sorted_insert(RankKey {
                            intercept: current,
                            ..key
                        });
                        continue;
                    }
                    Candidate::Abort => return Popped::Aborted,
                }
            }
            // Tie group: the oracle breaks intercept ties by ascending
            // id, so the whole group must be inspected before any
            // member is returned. Survivors keep their (equal) rank;
            // deflated keys re-file behind the group.
            let mut best: Option<RankKey<P>> = None;
            let mut survivors: Vec<RankKey<P>> = Vec::new();
            let mut moved: Vec<RankKey<P>> = Vec::new();
            while let Some(k) = self.queue.front() {
                if k.intercept.to_bits() != bits {
                    break;
                }
                let key = self.queue.pop_front().expect("front exists");
                match validate(&key) {
                    Candidate::Live => match &mut best {
                        Some(b) if b.id <= key.id => survivors.push(key),
                        _ => {
                            if let Some(prev) = best.replace(key) {
                                survivors.push(prev);
                            }
                        }
                    },
                    Candidate::Gone => {}
                    Candidate::Moved(current) => moved.push(RankKey {
                        intercept: current,
                        ..key
                    }),
                    Candidate::Abort => return Popped::Aborted,
                }
            }
            for key in survivors.into_iter().rev() {
                self.queue.push_front(key);
            }
            for key in moved {
                self.sorted_insert(key);
            }
            if let Some(best) = best {
                return Popped::Victim(best);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(intercept: f64, id: u64) -> RankKey<()> {
        RankKey {
            intercept,
            id,
            payload: (),
        }
    }

    /// Pops everything, validating against a "current" table: ids
    /// absent are Gone, ids whose value differs are Moved.
    fn drain(rank: &mut VictimRank<()>, current: &mut Vec<(u64, f64)>) -> Vec<u64> {
        let mut out = Vec::new();
        loop {
            let popped = rank.pop_best(|k| match current.iter().find(|(id, _)| *id == k.id) {
                None => Candidate::Gone,
                Some(&(_, v)) if v.to_bits() == k.intercept.to_bits() => Candidate::Live,
                Some(&(_, v)) => Candidate::Moved(v),
            });
            match popped {
                Popped::Victim(k) => {
                    current.retain(|(id, _)| *id != k.id);
                    out.push(k.id);
                }
                Popped::Dry => return out,
                Popped::Aborted => panic!("no abort in this test"),
            }
        }
    }

    #[test]
    fn monotone_pushes_pop_in_priority_order_with_id_ties() {
        let mut rank = VictimRank::from_keys(Vec::new());
        // Nonincreasing pushes, with an intercept tie (ids 7 and 3).
        for (v, id) in [(9.0, 1), (5.0, 7), (5.0, 3), (2.0, 2)] {
            rank.push(key(v, id));
        }
        assert!(rank.monotone);
        let mut current = vec![(1, 9.0), (7, 5.0), (3, 5.0), (2, 2.0)];
        assert_eq!(drain(&mut rank, &mut current), [1, 3, 7, 2]);
    }

    #[test]
    fn out_of_order_push_degrades_to_heap_and_stays_exact() {
        let mut rank = VictimRank::from_keys(Vec::new());
        rank.push(key(5.0, 1));
        rank.push(key(9.0, 2)); // violates monotonicity
        assert!(!rank.monotone);
        rank.push(key(7.0, 3));
        let mut current = vec![(1, 5.0), (2, 9.0), (3, 7.0)];
        assert_eq!(drain(&mut rank, &mut current), [2, 3, 1]);
    }

    #[test]
    fn stale_keys_deflate_and_refile() {
        let mut rank = VictimRank::from_keys(Vec::new());
        rank.push(key(9.0, 1));
        rank.push(key(8.0, 2));
        // id 1 was touched since: its live value is now 3.0, so id 2
        // must pop first, then the deflated id 1.
        let mut current = vec![(1, 3.0), (2, 8.0)];
        assert_eq!(drain(&mut rank, &mut current), [2, 1]);
    }

    #[test]
    fn gone_and_duplicate_keys_are_skipped() {
        let mut rank = VictimRank::from_keys(Vec::new());
        rank.push(key(9.0, 1));
        rank.push(key(9.0, 1)); // duplicate push, same value
        rank.push(key(4.0, 2));
        let mut current = vec![(1, 9.0), (2, 4.0)];
        assert_eq!(drain(&mut rank, &mut current), [1, 2]);
    }

    #[test]
    fn from_keys_sorts_and_restores_the_monotone_regime() {
        let rank: VictimRank<()> =
            VictimRank::from_keys(vec![key(1.0, 9), key(7.0, 2), key(4.0, 5)]);
        assert!(rank.monotone);
        assert_eq!(rank.len(), 3);
        let mut rank = rank;
        let mut current = vec![(9, 1.0), (2, 7.0), (5, 4.0)];
        assert_eq!(drain(&mut rank, &mut current), [2, 5, 9]);
    }

    #[test]
    fn abort_propagates() {
        let mut rank = VictimRank::from_keys(Vec::new());
        rank.push(key(1.0, 1));
        match rank.pop_best(|_| Candidate::Abort) {
            Popped::Aborted => {}
            _ => panic!("expected abort"),
        }
    }
}
