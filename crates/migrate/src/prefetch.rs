//! Sequential prefetch analysis (§6 / §5.2.1).
//!
//! "A researcher interested in day 1 of a climate model simulation will
//! usually be interested in day 2, and both days will probably be in
//! separate files" — so a prefetcher that, on a read of `…/f0007`,
//! stages `…/f0008` should absorb a large share of tape waits. This
//! module measures what fraction of reads such a rule would have
//! predicted, and how much data it would have moved in vain.

use std::collections::HashMap;

use fmig_trace::time::HOUR;
use fmig_trace::{Direction, TraceRecord};
use serde::{Deserialize, Serialize};

/// Result of the sequential-predictability analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PrefetchReport {
    /// Read references examined.
    pub reads: u64,
    /// Reads whose *predecessor file* (same directory, sequence − 1) was
    /// read within the lookback window — a sequential prefetcher would
    /// have had the file staged.
    pub predicted: u64,
    /// Prefetches that were never used within the window (wasted stages):
    /// reads that did NOT have a successor read.
    pub wasted: u64,
}

impl PrefetchReport {
    /// Fraction of reads a sequential prefetcher would have absorbed.
    pub fn hit_fraction(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.predicted as f64 / self.reads as f64
        }
    }

    /// Fraction of issued prefetches that were wasted.
    pub fn waste_fraction(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.wasted as f64 / self.reads as f64
        }
    }
}

/// Splits a path into `(directory, stem, sequence-number)` if its file
/// name ends in digits (`/a/b/f0007` → `("/a/b", "f", 7)`).
pub fn sequence_of(path: &str) -> Option<(&str, &str, u64)> {
    let (dir, name) = path.rsplit_once('/')?;
    let digits_at = name.find(|c: char| c.is_ascii_digit())?;
    let (stem, digits) = name.split_at(digits_at);
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let seq: u64 = digits.parse().ok()?;
    Some((dir, stem, seq))
}

/// Runs the analysis with the given lookback window.
pub fn analyze<'a>(
    records: impl IntoIterator<Item = &'a TraceRecord>,
    window_s: i64,
) -> PrefetchReport {
    // Last read time of each (dir, stem, seq).
    let mut last_read: HashMap<(&'a str, &'a str, u64), i64> = HashMap::new();
    // Whether a read's successor was later read (for waste accounting).
    let mut successor_used: HashMap<(&'a str, &'a str, u64), bool> = HashMap::new();
    let mut report = PrefetchReport::default();
    for rec in records {
        if !rec.is_ok() || rec.direction() != Direction::Read {
            continue;
        }
        report.reads += 1;
        let Some((dir, stem, seq)) = sequence_of(&rec.mss_path) else {
            continue;
        };
        let t = rec.start.as_unix();
        if seq > 0 {
            if let Some(&prev_t) = last_read.get(&(dir, stem, seq - 1)) {
                if t - prev_t <= window_s {
                    report.predicted += 1;
                    // The predecessor's prefetch paid off.
                    successor_used.insert((dir, stem, seq - 1), true);
                }
            }
        }
        last_read.insert((dir, stem, seq), t);
        successor_used.entry((dir, stem, seq)).or_insert(false);
    }
    report.wasted = successor_used.values().filter(|&&used| !used).count() as u64;
    report
}

/// The default 24-hour-window analysis.
pub fn daily<'a>(records: impl IntoIterator<Item = &'a TraceRecord>) -> PrefetchReport {
    analyze(records, 24 * HOUR)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmig_trace::time::TRACE_EPOCH;
    use fmig_trace::Endpoint;

    fn read(path: &str, t: i64) -> TraceRecord {
        TraceRecord::read(Endpoint::MssTapeSilo, TRACE_EPOCH.add_secs(t), 10, path, 1)
    }

    #[test]
    fn sequence_parsing() {
        assert_eq!(sequence_of("/a/b/f0007"), Some(("/a/b", "f", 7)));
        assert_eq!(sequence_of("/a/day123"), Some(("/a", "day", 123)));
        assert_eq!(sequence_of("/a/readme"), None);
        assert_eq!(sequence_of("noslash1"), None);
        assert_eq!(sequence_of("/a/x1y2"), None); // digits not a suffix
    }

    #[test]
    fn sequential_reads_are_predicted() {
        let records: Vec<_> = (0..10)
            .map(|i| read(&format!("/run/day{i:03}"), i * 60))
            .collect();
        let r = daily(records.iter());
        assert_eq!(r.reads, 10);
        // day001..day009 follow their predecessor.
        assert_eq!(r.predicted, 9);
        assert!((r.hit_fraction() - 0.9).abs() < 1e-12);
        // Only the final file's prefetch went unused.
        assert_eq!(r.wasted, 1);
    }

    #[test]
    fn stale_predecessors_do_not_count() {
        let records = [read("/run/day000", 0), read("/run/day001", 48 * HOUR)];
        let r = daily(records.iter());
        assert_eq!(r.predicted, 0);
    }

    #[test]
    fn random_access_is_unpredictable() {
        let records = [
            read("/run/day005", 0),
            read("/run/day002", 60),
            read("/run/day009", 120),
        ];
        let r = daily(records.iter());
        assert_eq!(r.predicted, 0);
        assert_eq!(r.wasted, 3);
    }

    #[test]
    fn different_stems_and_dirs_do_not_chain() {
        let records = [
            read("/run/day001", 0),
            read("/run/hist002", 30),  // different stem
            read("/other/day002", 60), // different dir
        ];
        let r = daily(records.iter());
        assert_eq!(r.predicted, 0);
    }

    #[test]
    fn writes_and_errors_are_ignored() {
        let w = TraceRecord::write(Endpoint::MssDisk, TRACE_EPOCH, 10, "/run/day000", 1);
        let mut bad = read("/run/day001", 10);
        bad.error = Some(fmig_trace::ErrorKind::FileNotFound);
        let records = [w, bad, read("/run/day002", 20)];
        let r = daily(records.iter());
        assert_eq!(r.reads, 1);
        assert_eq!(r.predicted, 0);
    }
}
