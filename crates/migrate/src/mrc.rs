//! Single-pass miss-ratio curves: the paper's central artifact (miss
//! ratio vs staging-disk capacity, §2.3/§6-a) computed for a whole
//! capacity grid in **one** walk of the trace.
//!
//! # Why a fused pass instead of a classical Mattson stack
//!
//! Mattson's stack algorithm gets a full miss-ratio curve from one pass
//! by keeping a single inclusion-ordered stack — valid when a cache of
//! size `c` always holds a subset of a cache of size `c' > c`. Our
//! [`DiskCache`] deliberately breaks that premise twice: watermark
//! purging evicts *batches* (down to the low watermark, not one file per
//! miss), and policies like STP carry time-varying priorities, so the
//! eviction decision a small cache makes early can differ in *order*
//! from the one a large cache makes later. Inclusion does not hold, and
//! a single-stack curve would be an approximation.
//!
//! The engine here keeps exactness instead: one pass over the prepared
//! trace drives a per-capacity priority stack for every grid point
//! simultaneously, over **one shared file table**. Per reference it
//! pays *no* lookup at all — [`fmig_trace::FileId`] is already the
//! dense arena index (the `FileTable` interned it at trace prep) —
//! followed by a contiguous row of per-capacity sub-states, where a
//! naive sweep pays a full hash lookup *per capacity*. (This engine's
//! private `IdMap` pioneered that layout; the dense id went
//! workspace-wide and the local copy is gone.) Only residency-dependent
//! state
//! (size as of the last insert/write, creation time, reference count,
//! dirtiness) is per-capacity; `last_ref` and `next_use` are written by
//! every touch in every cache that holds the file, so they live once
//! per file.
//!
//! Victim ranking is tiered by how much the policy promises:
//!
//! * **Pure recency** ([`MigrationPolicy::recency_keyed`], LRU): the
//!   victim order is the same global recency order for *every*
//!   capacity, so all stacks share **one** append-only touch log and
//!   each walks it with its own clock-hand cursor — O(1) per reference
//!   for the whole grid, no floats, no virtual calls. This is the
//!   closest exact analogue of Mattson's single stack that watermark
//!   batch purging admits.
//! * **Affine** ([`MigrationPolicy::affine`]): per-capacity incremental
//!   index with the same adaptive machinery as [`DiskCache`] (monotone
//!   queue / lazy heap, resident-count gate
//!   [`crate::cache::INDEX_MIN_RESIDENTS`]).
//! * **Kinetic** ([`MigrationPolicy::kinetic`], STP/SAAC/RandomEvict
//!   and the latency-aware pair): a per-capacity kinetic tournament
//!   (`crate::rank::KineticTournament`) whose certificates schedule the
//!   only re-comparisons a clock advance needs, so each stack pays
//!   amortized `O(log n)` per purge instead of re-ranking all residents
//!   at every capacity.
//! * **Everything else**: the exact `total_cmp` rescan.
//!
//! The result is **bit-identical** to replaying the trace once per
//! capacity (property-tested in `tests/mrc_index.rs` across every
//! shipped policy), because each capacity's stack makes exactly the
//! decisions a lone [`DiskCache`] would.
//!
//! The open-loop sweep runner collapses all `cache_fraction` cells that
//! share a (policy, shard) coordinate onto one such pass; closed-loop
//! latency cells still replay individually, since the device model's
//! feedback is per-cell.

use fmig_trace::FileId;

use crate::cache::{CacheConfig, CacheStats, DiskCache, EvictionMode, INDEX_MIN_RESIDENTS};
use crate::eval::{EvalConfig, PolicyOutcome, PreparedRef};
use crate::policy::{FileView, KineticForm, MigrationPolicy};
use crate::rank::{Candidate, KineticTournament, Popped, RankKey, VictimRank};

/// One point of a miss-ratio curve: a capacity and the full cache
/// counters measured there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrcPoint {
    /// Cache capacity in bytes.
    pub capacity: u64,
    /// The counters an individual replay at this capacity would produce.
    pub stats: CacheStats,
}

impl MrcPoint {
    /// Read miss ratio by references at this capacity.
    pub fn miss_ratio(&self) -> f64 {
        self.stats.miss_ratio()
    }

    /// Read miss ratio by bytes at this capacity.
    pub fn byte_miss_ratio(&self) -> f64 {
        self.stats.byte_miss_ratio()
    }

    /// Dresses the point up as the [`PolicyOutcome`] an individual
    /// replay at this capacity would have returned.
    pub fn outcome(&self, policy_name: &str, config: &EvalConfig) -> PolicyOutcome {
        PolicyOutcome {
            name: policy_name.to_string(),
            stats: self.stats,
            miss_ratio: self.stats.miss_ratio(),
            byte_miss_ratio: self.stats.byte_miss_ratio(),
            person_minutes_per_day: self
                .stats
                .person_minutes_per_day(config.wait_s_per_miss, config.trace_days),
            latency: None,
        }
    }
}

/// A miss-ratio curve: one policy evaluated at a grid of capacities, in
/// the grid's order.
#[derive(Debug, Clone, PartialEq)]
pub struct MissRatioCurve {
    /// Display name of the policy the curve belongs to.
    pub policy: String,
    /// One point per requested capacity, in request order.
    pub points: Vec<MrcPoint>,
}

impl MissRatioCurve {
    /// The `(capacity, miss_ratio)` pairs, the shape most plots want.
    pub fn miss_ratios(&self) -> Vec<(u64, f64)> {
        self.points
            .iter()
            .map(|p| (p.capacity, p.miss_ratio()))
            .collect()
    }
}

/// Per-file state every capacity shares: each touch writes these in
/// every cache that holds (or just fetched) the file, so one copy is
/// exact for all of them.
///
/// Indexed directly by [`FileId`] — the dense index *is* the file's
/// identity (and the victim tie-break key), so no id field is stored.
#[derive(Debug, Clone, Copy)]
struct GlobalState {
    last_ref: i64,
    next_use: Option<i64>,
    /// Index of the file's latest entry in the shared recency log
    /// (recency-keyed policies only): a log entry is live iff it is the
    /// file's latest.
    last_seq: u32,
}

impl GlobalState {
    const EMPTY: GlobalState = GlobalState {
        last_ref: 0,
        next_use: None,
        last_seq: 0,
    };
}

/// Residency-dependent state of one file in one capacity's stack.
#[derive(Debug, Clone, Copy)]
struct SubState {
    resident: bool,
    dirty: bool,
    /// Size as of this stack's last insert/write of the file (a read
    /// hit never resizes an entry, so stacks can disagree).
    size: u64,
    created: i64,
    ref_count: u32,
    /// Position in the stack's resident list, for O(1) removal.
    pos: u32,
}

impl SubState {
    const EMPTY: SubState = SubState {
        resident: false,
        dirty: false,
        size: 0,
        created: 0,
        ref_count: 0,
        pos: 0,
    };
}

/// How one capacity's stack currently ranks victims — the same
/// lifecycle as `DiskCache`'s `Auto` mode. The payload of each
/// [`RankKey`] is the file's dense index.
#[derive(Debug)]
enum RankMode {
    Unprobed,
    Active {
        slope_bits: u64,
        rank: VictimRank<u32>,
    },
    /// The policy declined `affine()` but ships a kinetic form: this
    /// capacity's victims rank through a certificate-carrying tournament
    /// over its resident set, as in `DiskCache`.
    Kinetic(KineticTournament),
    Rescan,
}

/// The evaluation hook one stack's [`KineticTournament`] calls to
/// (re-)score a leaf, mirroring `cache::kinetic_eval` over this
/// engine's split (global, per-capacity) file state. `None` (not
/// resident in this capacity, or the policy refuses the form) degrades
/// the stack to the rescan.
fn stack_kinetic_eval<'a>(
    policy: &'a dyn MigrationPolicy,
    globals: &'a [GlobalState],
    subs: &'a [SubState],
    grid: usize,
    ci: usize,
    est: f64,
) -> impl FnMut(u32, i64) -> Option<(f64, KineticForm)> + 'a {
    move |fidx, at| {
        let sub = subs.get(fidx as usize * grid + ci)?;
        if !sub.resident {
            return None;
        }
        let g = globals.get(fidx as usize)?;
        let v = sub_view(fidx, g, sub, est);
        let form = policy.kinetic(&v, at)?;
        Some((policy.priority(&v, at), form))
    }
}

/// One capacity's priority stack: watermarks, usage, counters, resident
/// list, and victim-ranking state.
#[derive(Debug)]
struct Stack {
    capacity: u64,
    high: u64,
    low: u64,
    usage: u64,
    stats: CacheStats,
    residents: Vec<u32>,
    rank: RankMode,
    /// This stack's clock hand into the shared recency log
    /// (recency-keyed policies only): everything before it is dead *for
    /// this capacity*.
    cursor: usize,
}

fn sub_view(fidx: u32, g: &GlobalState, sub: &SubState, est_miss_wait_s: f64) -> FileView {
    FileView {
        id: FileId::new(fidx),
        size: sub.size,
        last_ref: g.last_ref,
        created: sub.created,
        ref_count: sub.ref_count,
        next_use: g.next_use,
        // The open-loop fallback constant, identical for every file —
        // exactly what a per-capacity `DiskCache` replay stamps on each
        // entry when the caller sets the same hint.
        est_miss_wait_s,
    }
}

impl Stack {
    fn new(capacity: u64, base: &CacheConfig) -> Self {
        Stack {
            capacity,
            high: (capacity as f64 * base.high_watermark) as u64,
            low: (capacity as f64 * base.low_watermark) as u64,
            usage: 0,
            stats: CacheStats::default(),
            residents: Vec::new(),
            rank: RankMode::Unprobed,
            cursor: 0,
        }
    }

    /// Watermark purge off the shared recency log: advance this stack's
    /// clock hand past dead entries (file gone from this capacity, or a
    /// later touch exists) and evict live ones oldest-first, resolving
    /// equal-timestamp groups by ascending id — exactly the
    /// `(priority desc, id asc)` order LRU's rescan would produce,
    /// without a single float or virtual call.
    ///
    /// Every resident's latest log entry is always at or past the
    /// cursor (the hand only passes an entry once it is dead for this
    /// capacity, and any later re-entry appends a fresh entry), so the
    /// walk is exhaustive and each stack traverses the log at most once
    /// per run.
    fn maybe_purge_recency(
        &mut self,
        log: &[(i64, u32)],
        globals: &[GlobalState],
        subs: &mut [SubState],
        grid: usize,
        ci: usize,
    ) {
        if self.usage <= self.high {
            return;
        }
        while self.usage > self.low {
            let live = |fidx: u32, seq: usize, subs: &[SubState]| {
                subs[fidx as usize * grid + ci].resident
                    && globals[fidx as usize].last_seq == seq as u32
            };
            // Advance the hand past dead entries to the oldest live one.
            let (time, mut victim) = loop {
                let Some(&(time, fidx)) = log.get(self.cursor) else {
                    return; // no live entry left: nothing to purge
                };
                if live(fidx, self.cursor, subs) {
                    break (time, fidx);
                }
                self.cursor += 1;
            };
            // Equal-timestamp group: the oracle breaks the priority tie
            // by ascending id, so pick the smallest live id among the
            // group. The hand stays on the group until it is all dead.
            let mut j = self.cursor + 1;
            while let Some(&(t2, f2)) = log.get(j) {
                if t2 != time {
                    break;
                }
                // The dense index is the id, so this *is* the ascending-
                // id tie-break.
                if live(f2, j, subs) && f2 < victim {
                    victim = f2;
                }
                j += 1;
            }
            self.evict(victim, subs, grid, ci);
        }
    }

    /// Mirrors a touched/inserted resident's mutation into whichever
    /// index this stack runs — an affine key push or a kinetic leaf
    /// upsert — exactly like `DiskCache::index_upsert`. Returns `true`
    /// when stale affine keys dominate and the caller should rebuild the
    /// heap from the resident set (the caller holds the file table the
    /// rebuild needs); the kinetic tournament mirrors exactly and never
    /// asks for a rebuild.
    #[must_use]
    #[expect(clippy::too_many_arguments)]
    fn index_upsert(
        &mut self,
        policy: &dyn MigrationPolicy,
        fidx: u32,
        globals: &[GlobalState],
        subs: &[SubState],
        grid: usize,
        ci: usize,
        now: i64,
        est: f64,
    ) -> bool {
        match &mut self.rank {
            RankMode::Active { slope_bits, rank } => {
                let g = &globals[fidx as usize];
                let sub = &subs[fidx as usize * grid + ci];
                match policy.affine(&sub_view(fidx, g, sub, est)) {
                    Some(a) if a.slope.to_bits() == *slope_bits => {
                        rank.push(RankKey {
                            intercept: a.intercept,
                            id: u64::from(fidx),
                            payload: fidx,
                        });
                        rank.len() > self.residents.len() * 2 + 64
                    }
                    _ => {
                        self.rank = RankMode::Rescan;
                        false
                    }
                }
            }
            RankMode::Kinetic(t) => {
                let mut eval = stack_kinetic_eval(policy, globals, subs, grid, ci, est);
                let ok = t.upsert(fidx, now, &mut eval);
                if !ok {
                    self.rank = RankMode::Rescan;
                }
                false
            }
            RankMode::Unprobed | RankMode::Rescan => false,
        }
    }

    /// Probes the resident set for an index — every file's affine form
    /// first, then the kinetic form — or settles on the rescan;
    /// `DiskCache::build_index` for one stack.
    #[expect(clippy::too_many_arguments)]
    fn build_index(
        &self,
        policy: &dyn MigrationPolicy,
        globals: &[GlobalState],
        subs: &[SubState],
        grid: usize,
        ci: usize,
        now: i64,
        est: f64,
    ) -> RankMode {
        if let Some(mode) = self.build_affine_index(policy, globals, subs, grid, ci, est) {
            return mode;
        }
        if self.residents.is_empty() {
            return RankMode::Rescan;
        }
        let mut eval = stack_kinetic_eval(policy, globals, subs, grid, ci, est);
        match KineticTournament::build(&self.residents, now, &mut eval) {
            Some(t) => RankMode::Kinetic(t),
            None => RankMode::Rescan,
        }
    }

    /// Probes every resident's affine form; `None` on any refusal or
    /// slope disagreement.
    fn build_affine_index(
        &self,
        policy: &dyn MigrationPolicy,
        globals: &[GlobalState],
        subs: &[SubState],
        grid: usize,
        ci: usize,
        est: f64,
    ) -> Option<RankMode> {
        let mut slope_bits = None;
        let mut keys = Vec::with_capacity(self.residents.len());
        for &fidx in &self.residents {
            let g = &globals[fidx as usize];
            let sub = &subs[fidx as usize * grid + ci];
            let a = policy.affine(&sub_view(fidx, g, sub, est))?;
            let bits = a.slope.to_bits();
            if *slope_bits.get_or_insert(bits) != bits {
                return None;
            }
            keys.push(RankKey {
                intercept: a.intercept,
                id: u64::from(fidx),
                payload: fidx,
            });
        }
        slope_bits.map(|slope_bits| RankMode::Active {
            slope_bits,
            rank: VictimRank::from_keys(keys),
        })
    }

    /// Inserts `fidx` (not currently resident) with the given state.
    fn insert(&mut self, fidx: u32, sub: &mut SubState) {
        sub.resident = true;
        sub.pos = self.residents.len() as u32;
        self.residents.push(fidx);
        self.usage += sub.size;
    }

    /// Removes a victim from the resident list and books the eviction —
    /// `DiskCache::evict` for one stack.
    fn evict(&mut self, fidx: u32, subs: &mut [SubState], grid: usize, ci: usize) {
        let stall = self.usage > self.high;
        let sub = &mut subs[fidx as usize * grid + ci];
        debug_assert!(sub.resident, "victim is resident");
        sub.resident = false;
        let pos = sub.pos as usize;
        let size = sub.size;
        self.residents.swap_remove(pos);
        if let Some(&moved) = self.residents.get(pos) {
            subs[moved as usize * grid + ci].pos = pos as u32;
        }
        self.usage -= size;
        self.stats.evictions += 1;
        self.stats.evicted_bytes += size;
        if subs[fidx as usize * grid + ci].dirty {
            self.stats.writeback_bytes += size;
            if stall {
                self.stats.stall_bytes += size;
            } else {
                self.stats.purge_flush_bytes += size;
            }
        }
    }

    /// Watermark purge with the same dispatch as `DiskCache`: activate
    /// the index when eligible, pop victims off it, or fall back to the
    /// exact rescan.
    #[expect(clippy::too_many_arguments)]
    fn maybe_purge(
        &mut self,
        policy: &dyn MigrationPolicy,
        globals: &[GlobalState],
        subs: &mut [SubState],
        grid: usize,
        ci: usize,
        now: i64,
        est: f64,
    ) {
        if self.usage <= self.high {
            return;
        }
        if matches!(self.rank, RankMode::Unprobed) && self.residents.len() >= INDEX_MIN_RESIDENTS {
            self.rank = self.build_index(policy, globals, subs, grid, ci, now, est);
        }
        if matches!(self.rank, RankMode::Active { .. }) {
            while self.usage > self.low {
                let RankMode::Active { slope_bits, rank } = &mut self.rank else {
                    unreachable!("checked above");
                };
                // The rank resolves staleness as keys surface; stale
                // keys only ever overestimate (read-touch pushes are
                // skipped exactly when they could only lower the key),
                // so deflation converges on the exact maximum.
                let slope_bits = *slope_bits;
                let popped = rank.pop_best(|key| {
                    let sub = &subs[key.payload as usize * grid + ci];
                    if !sub.resident {
                        return Candidate::Gone; // evicted since pushed
                    }
                    let g = &globals[key.payload as usize];
                    match policy.affine(&sub_view(key.payload, g, sub, est)) {
                        Some(a)
                            if a.slope.to_bits() == slope_bits
                                && a.intercept.to_bits() == key.intercept.to_bits() =>
                        {
                            Candidate::Live
                        }
                        Some(a) if a.slope.to_bits() == slope_bits => Candidate::Moved(a.intercept),
                        _ => Candidate::Abort, // contract violation
                    }
                });
                match popped {
                    Popped::Victim(key) => self.evict(key.payload, subs, grid, ci),
                    Popped::Dry | Popped::Aborted => {
                        self.rank = RankMode::Rescan;
                        break;
                    }
                }
            }
            if self.usage <= self.low {
                return;
            }
            // Fell through: the index degraded mid-purge.
        }
        if matches!(self.rank, RankMode::Kinetic(_)) {
            // `DiskCache::purge_kinetic` for one stack: advance the
            // tournament clock, take the root winner (the exact
            // `(priority desc, id asc)` maximum — internal nodes compare
            // true priorities; certificates only schedule re-checks),
            // revalidate it by value, and evict. A validation mismatch
            // means a missed leaf update, so repairs are bounded and
            // persistent trouble degrades to the rescan below. The step
            // is computed inside the match so the tournament's `&mut`
            // and the eval hook's borrows end before the stack mutates.
            enum Step {
                Evict(u32),
                Repaired,
                Degrade,
            }
            let mut repairs = 0usize;
            while self.usage > self.low {
                let step = match &mut self.rank {
                    RankMode::Kinetic(t) => {
                        let mut eval = stack_kinetic_eval(policy, globals, subs, grid, ci, est);
                        let winner = if t.advance(now, &mut eval) {
                            t.winner()
                        } else {
                            None
                        };
                        match winner {
                            None => Step::Degrade,
                            Some((fidx, cached, stamp)) => {
                                // Pop-time revalidation by value: the
                                // winner leaf's cached score must equal
                                // the live resident's score at the
                                // leaf's own evaluation time, bit for
                                // bit.
                                let sub = &subs[fidx as usize * grid + ci];
                                let live = sub.resident.then(|| {
                                    let g = &globals[fidx as usize];
                                    policy.priority(&sub_view(fidx, g, sub, est), stamp)
                                });
                                match live {
                                    Some(p) if p.to_bits() == cached.to_bits() => Step::Evict(fidx),
                                    Some(_) if repairs < 32 => {
                                        repairs += 1;
                                        if t.upsert(fidx, now, &mut eval) {
                                            Step::Repaired
                                        } else {
                                            Step::Degrade
                                        }
                                    }
                                    _ => Step::Degrade,
                                }
                            }
                        }
                    }
                    _ => Step::Degrade,
                };
                match step {
                    Step::Evict(fidx) => {
                        self.evict(fidx, subs, grid, ci);
                        // Unlike the affine rank's lazy stale keys, the
                        // tournament mirrors the resident set exactly:
                        // the victim's leaf comes out now.
                        let removed = match &mut self.rank {
                            RankMode::Kinetic(t) => {
                                let mut eval =
                                    stack_kinetic_eval(policy, globals, subs, grid, ci, est);
                                t.remove(fidx, now, &mut eval)
                            }
                            _ => true,
                        };
                        if !removed {
                            self.rank = RankMode::Rescan;
                        }
                    }
                    Step::Repaired => {}
                    Step::Degrade => {
                        self.rank = RankMode::Rescan;
                        break;
                    }
                }
            }
            if self.usage <= self.low {
                return;
            }
            // Fell through: the tournament degraded mid-purge.
        }
        // Exact rescan: rank every resident at `now`, highest priority
        // first, id-ascending tie-break — identical to
        // `DiskCache::purge_rescan`.
        let mut ranked: Vec<(f64, u32)> = self
            .residents
            .iter()
            .map(|&fidx| {
                let g = &globals[fidx as usize];
                let sub = &subs[fidx as usize * grid + ci];
                (policy.priority(&sub_view(fidx, g, sub, est), now), fidx)
            })
            .collect();
        // Priority descending, then dense id (== index) ascending.
        ranked.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, fidx) in ranked {
            if self.usage <= self.low {
                break;
            }
            self.evict(fidx, subs, grid, ci);
        }
    }
}

/// Computes the exact miss-ratio curve for `policy` over `capacities` in
/// a single pass over the prepared trace.
///
/// Each capacity's counters are bit-identical to what
/// [`sweep_capacities_naive`] (one full replay per capacity) measures;
/// the pass shares the file table, the id lookup, and the next-use
/// oracle across the grid, and each stack purges through the adaptive
/// eviction index wherever the policy is affine.
///
/// # Panics
///
/// Panics if `base.cache`'s watermarks are not `0 < low <= high <= 1`
/// (the same contract as [`DiskCache::new`]).
pub fn sweep_capacities(
    refs: &[PreparedRef],
    policy: &dyn MigrationPolicy,
    capacities: &[u64],
    base: &EvalConfig,
) -> MissRatioCurve {
    sweep_capacities_streaming(refs.iter().copied(), policy, capacities, base)
}

/// [`sweep_capacities`] over a reference *stream*: the same fused
/// single-pass engine, fed from any iterator instead of a slice.
///
/// This is the entry the imported-trace replay store uses — its chunked
/// readers hand references straight from disk, so a multi-GB trace
/// sweeps a whole capacity grid without ever materializing as a
/// `Vec<PreparedRef>`. Peak memory is the grid's per-file state
/// (`O(files × capacities)`) plus whatever the iterator buffers.
/// Feeding the same sequence is bit-identical to the slice entry, which
/// is implemented on top of this.
///
/// # Panics
///
/// Panics if `base.cache`'s watermarks are not `0 < low <= high <= 1`
/// (the same contract as [`DiskCache::new`]).
pub fn sweep_capacities_streaming(
    refs: impl IntoIterator<Item = PreparedRef>,
    policy: &dyn MigrationPolicy,
    capacities: &[u64],
    base: &EvalConfig,
) -> MissRatioCurve {
    assert!(
        base.cache.low_watermark > 0.0
            && base.cache.low_watermark <= base.cache.high_watermark
            && base.cache.high_watermark <= 1.0,
        "bad watermarks {} / {}",
        base.cache.low_watermark,
        base.cache.high_watermark
    );
    let grid = capacities.len();
    let mut stacks: Vec<Stack> = capacities
        .iter()
        .map(|&capacity| Stack::new(capacity, &base.cache))
        .collect();
    let skip_read_touch = policy.read_touch_monotone();
    // The open-loop miss-latency fallback: every FileView this pass
    // hands to the policy carries the same flat estimate the naive
    // per-capacity replay stamps on its entries (see
    // `DiskCache::set_est_miss_wait_s`), keeping the two bit-identical
    // for latency-aware policies too.
    let est = base.wait_s_per_miss;
    // Pure-recency policies (LRU) rank victims for the whole grid off
    // one shared chronological touch log; see `maybe_purge_recency`.
    let mut recency = policy.recency_keyed();
    let mut log: Vec<(i64, u32)> = Vec::new();
    let mut globals: Vec<GlobalState> = Vec::new();
    let mut subs: Vec<SubState> = Vec::new();
    let mut max_now = i64::MIN;
    for r in refs {
        // The dense id is the arena index — no interning, no lookup.
        // Grow the shared table and the per-capacity rows lazily to
        // cover it (hand-built streams may arrive out of dense order).
        let fidx = r.id.raw();
        if r.id.index() >= globals.len() {
            globals.resize(r.id.index() + 1, GlobalState::EMPTY);
            subs.resize(globals.len() * grid, SubState::EMPTY);
        }
        if r.time < max_now {
            // Monotone-clock guard, as in `DiskCache::note_time`: the
            // affine contract is void, every stack degrades for good.
            for stack in &mut stacks {
                stack.rank = RankMode::Rescan;
            }
            recency = false;
        } else {
            max_now = r.time;
        }
        // Every touch writes these in every stack that ends up holding
        // the file (hits refresh them, misses insert with them), so the
        // shared copy is exact.
        let g = &mut globals[fidx as usize];
        g.last_ref = r.time;
        g.next_use = r.next_use;
        if recency {
            g.last_seq = log.len() as u32;
            log.push((r.time, fidx));
        }
        let row = fidx as usize * grid;
        for (ci, stack) in stacks.iter_mut().enumerate() {
            let sub = &mut subs[row + ci];
            if r.write {
                stack.stats.writes += 1;
                if base.cache.eager_writeback {
                    stack.stats.writeback_bytes += r.size;
                }
                if sub.resident {
                    stack.usage = stack.usage - sub.size + r.size;
                    sub.size = r.size;
                    sub.ref_count += 1;
                    sub.dirty = !base.cache.eager_writeback;
                } else {
                    if r.size > stack.capacity {
                        continue; // tape-direct bypass
                    }
                    *sub = SubState {
                        resident: false,
                        dirty: !base.cache.eager_writeback,
                        size: r.size,
                        created: r.time,
                        ref_count: 1,
                        pos: 0,
                    };
                    stack.insert(fidx, sub);
                }
            } else if sub.resident {
                // Read hit — the hot path. Usage is unchanged (no purge
                // can trigger) and for read-touch-monotone policies the
                // stale index key safely overestimates, so the whole
                // index interaction is skipped.
                stack.stats.read_hits += 1;
                stack.stats.read_hit_bytes += sub.size;
                sub.ref_count += 1;
                if !skip_read_touch
                    && !recency
                    && stack.index_upsert(policy, fidx, &globals, &subs, grid, ci, r.time, est)
                {
                    stack.rank = stack.build_index(policy, &globals, &subs, grid, ci, r.time, est);
                }
                continue;
            } else {
                stack.stats.read_misses += 1;
                stack.stats.read_miss_bytes += r.size;
                if r.size > stack.capacity {
                    continue; // tape-direct bypass
                }
                *sub = SubState {
                    resident: false,
                    dirty: false,
                    size: r.size,
                    created: r.time,
                    ref_count: 1,
                    pos: 0,
                };
                stack.insert(fidx, sub);
            }
            // Only writes and inserts reach here, the ops that can grow
            // usage past the watermark — same reachability as
            // `DiskCache`.
            if recency {
                stack.maybe_purge_recency(&log, &globals, &mut subs, grid, ci);
                continue;
            }
            if stack.index_upsert(policy, fidx, &globals, &subs, grid, ci, r.time, est) {
                stack.rank = stack.build_index(policy, &globals, &subs, grid, ci, r.time, est);
            }
            stack.maybe_purge(policy, &globals, &mut subs, grid, ci, r.time, est);
        }
    }
    MissRatioCurve {
        policy: policy.name(),
        points: capacities
            .iter()
            .zip(&stacks)
            .map(|(&capacity, stack)| MrcPoint {
                capacity,
                stats: stack.stats,
            })
            .collect(),
    }
}

/// The pre-index cost model: replays the full trace once per capacity
/// with the sort-based rescan ranking every purge.
///
/// Kept as the oracle the single-pass engine is property-tested against
/// and as the baseline `examples/capacity_planning.rs` and
/// `benches/eviction.rs` measure speedups over.
pub fn sweep_capacities_naive(
    refs: &[PreparedRef],
    policy: &dyn MigrationPolicy,
    capacities: &[u64],
    base: &EvalConfig,
) -> MissRatioCurve {
    let points = capacities
        .iter()
        .map(|&capacity| {
            let mut cache = DiskCache::with_eviction_mode(
                CacheConfig {
                    capacity,
                    ..base.cache
                },
                policy,
                EvictionMode::Rescan,
            );
            cache.set_est_miss_wait_s(base.wait_s_per_miss);
            for r in refs {
                if r.write {
                    cache.write(r.id, r.size, r.time, r.next_use);
                } else {
                    cache.read(r.id, r.size, r.time, r.next_use);
                }
            }
            MrcPoint {
                capacity,
                stats: *cache.stats(),
            }
        })
        .collect();
    MissRatioCurve {
        policy: policy.name(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::prepare;
    use crate::policy::{standard_suite, Belady, Lru};
    use fmig_trace::time::TRACE_EPOCH;
    use fmig_trace::{Endpoint, TraceRecord};

    fn skewed_refs() -> Vec<PreparedRef> {
        let mut records = Vec::new();
        let mut t = 0i64;
        for round in 0..50 {
            for hot in 0..5 {
                t += 15;
                records.push(TraceRecord::read(
                    Endpoint::MssDisk,
                    TRACE_EPOCH.add_secs(t),
                    300_000,
                    format!("/hot/f{hot}"),
                    1,
                ));
            }
            t += 15;
            records.push(TraceRecord::read(
                Endpoint::MssTapeSilo,
                TRACE_EPOCH.add_secs(t),
                2_500_000,
                format!("/cold/f{round}"),
                1,
            ));
        }
        prepare(records.iter()).refs().to_vec()
    }

    #[test]
    fn single_pass_matches_naive_per_capacity_replay() {
        let refs = skewed_refs();
        let capacities = [900_000u64, 2_000_000, 5_000_000, 20_000_000, 80_000_000];
        let base = EvalConfig::with_capacity(0);
        let mut policies = standard_suite();
        policies.push(Box::new(Belady));
        for policy in &policies {
            let fused = sweep_capacities(&refs, policy.as_ref(), &capacities, &base);
            let naive = sweep_capacities_naive(&refs, policy.as_ref(), &capacities, &base);
            assert_eq!(fused, naive, "{} diverged", policy.name());
        }
    }

    #[test]
    fn curves_are_monotone_for_stack_friendly_policies() {
        let refs = skewed_refs();
        let capacities = [1_000_000u64, 4_000_000, 16_000_000, 64_000_000];
        let curve = sweep_capacities(&refs, &Lru, &capacities, &EvalConfig::with_capacity(0));
        for w in curve.miss_ratios().windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-9,
                "LRU miss ratio rose with capacity: {:?}",
                curve.miss_ratios()
            );
        }
    }

    #[test]
    fn outcome_matches_individual_replay() {
        let refs = skewed_refs();
        let base = EvalConfig::with_capacity(0);
        let curve = sweep_capacities(&refs, &Lru, &[3_000_000], &base);
        let config = EvalConfig {
            cache: CacheConfig {
                capacity: 3_000_000,
                ..base.cache
            },
            ..base
        };
        let point = curve.points[0].outcome("LRU", &config);
        let trace = crate::eval::PreparedTrace::from_refs(refs);
        let direct = trace.replay(&Lru, &config);
        assert_eq!(point, direct);
    }

    #[test]
    fn empty_grid_and_empty_trace_are_fine() {
        let refs = skewed_refs();
        let base = EvalConfig::with_capacity(0);
        assert!(sweep_capacities(&refs, &Lru, &[], &base).points.is_empty());
        let empty = sweep_capacities(&[], &Lru, &[1_000_000], &base);
        assert_eq!(empty.points[0].stats, CacheStats::default());
    }
}
