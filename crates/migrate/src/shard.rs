//! A sharded, lock-per-shard front for [`DiskCache`]: the concurrent
//! cache core the live HSM daemon (`fmig-serve`) owns.
//!
//! The plain [`DiskCache`] is a `&mut self` structure — exactly right
//! for replay and simulation, where one engine owns it, and exactly
//! wrong for a daemon serving many connections. [`ShardedCache`] maps
//! each [`FileId`] to one of `N` independent [`parking_lot::Mutex`]ed
//! shards, so classification of files in different shards proceeds
//! concurrently while each shard keeps every `DiskCache` invariant
//! (watermark purges, eviction index, outstanding-fetch state) intact.
//!
//! # Identity mapping and the arena invariant
//!
//! Shard choice is `id.index() % N`; inside shard `s` the file is known
//! by the **dense local id** `id.index() / N`. This keeps each shard's
//! entry arena as dense as the global arena was — the strided global
//! ids of one residue class collapse onto consecutive local indices —
//! so the arena-backed replay state (permanent ids, recycled slots)
//! carries over per shard unchanged. Side-effect ops are translated
//! back to global ids before the caller sees them.
//!
//! # Exactness contract
//!
//! With `N = 1` the mapping is the identity and a `ShardedCache` is
//! **byte-identical** to a plain `DiskCache` fed the same sequence —
//! which is what lets the live service run at `shards = 1` and be
//! validated against the single-cache simulator oracle exactly. With
//! `N > 1` each shard purges against its own `capacity / N` slice, so
//! global eviction order (and therefore miss counts) may deviate from
//! the single-cache baseline; that trade is the standard one for
//! shard-level concurrency and is documented, not hidden. Policies run
//! unmodified behind the adapter either way — they see per-shard
//! [`FileView`]s and never notice the mapping.
//!
//! [`FileView`]: crate::policy::FileView

use fmig_trace::FileId;
use parking_lot::Mutex;

use crate::cache::{CacheConfig, CacheOp, CacheStats, DiskCache, ReadResult};
use crate::policy::MigrationPolicy;

/// A fixed-width array of [`DiskCache`] shards behind per-shard locks;
/// see the [module docs](self).
pub struct ShardedCache<'p> {
    shards: Vec<Mutex<DiskCache<'p>>>,
}

impl<'p> ShardedCache<'p> {
    /// Splits `config.capacity` evenly across `shards` caches, all
    /// ranked by the same (stateless, `Sync`) policy.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, or on the watermark conditions
    /// [`DiskCache::new`] panics on.
    pub fn new(config: CacheConfig, policy: &'p dyn MigrationPolicy, shards: usize) -> Self {
        assert!(shards > 0, "a sharded cache needs at least one shard");
        let per = config.capacity / shards as u64;
        let rem = config.capacity % shards as u64;
        let shards = (0..shards)
            .map(|s| {
                let cfg = CacheConfig {
                    // Spread the remainder over the first shards so the
                    // slices sum exactly to the configured capacity.
                    capacity: per + u64::from((s as u64) < rem),
                    ..config
                };
                Mutex::new(DiskCache::new(cfg, policy))
            })
            .collect();
        ShardedCache { shards }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, id: FileId) -> usize {
        id.index() % self.shards.len()
    }

    fn local(&self, id: FileId) -> FileId {
        FileId::from(id.index() / self.shards.len())
    }

    fn global(&self, local: FileId, shard: usize) -> FileId {
        FileId::from(local.index() * self.shards.len() + shard)
    }

    /// Classifies a read against the owning shard, publishing the
    /// caller's miss-wait estimate to that shard first (the sharded
    /// equivalent of [`DiskCache::set_est_miss_wait_s`] followed by
    /// [`DiskCache::read_with`]). Side-effect ops reach `ops` with
    /// **global** file ids.
    pub fn read_with(
        &self,
        id: impl Into<FileId>,
        size: u64,
        now: i64,
        next_use: Option<i64>,
        est_miss_wait_s: f64,
        ops: &mut impl FnMut(CacheOp),
    ) -> ReadResult {
        let id = id.into();
        let s = self.shard_of(id);
        let mut shard = self.shards[s].lock();
        shard.set_est_miss_wait_s(est_miss_wait_s);
        shard.read_with(self.local(id), size, now, next_use, &mut |op| {
            ops(self.globalize(op, s))
        })
    }

    /// Classifies a write against the owning shard; the sharded
    /// equivalent of [`DiskCache::write_with`]. Side-effect ops reach
    /// `ops` with **global** file ids.
    pub fn write_with(
        &self,
        id: impl Into<FileId>,
        size: u64,
        now: i64,
        next_use: Option<i64>,
        est_miss_wait_s: f64,
        ops: &mut impl FnMut(CacheOp),
    ) {
        let id = id.into();
        let s = self.shard_of(id);
        let mut shard = self.shards[s].lock();
        shard.set_est_miss_wait_s(est_miss_wait_s);
        shard.write_with(self.local(id), size, now, next_use, &mut |op| {
            ops(self.globalize(op, s))
        });
    }

    /// Forwards [`DiskCache::fetch_complete`] to the owning shard.
    pub fn fetch_complete(&self, id: impl Into<FileId>) -> bool {
        let id = id.into();
        self.shards[self.shard_of(id)]
            .lock()
            .fetch_complete(self.local(id))
    }

    /// Forwards [`DiskCache::fetch_failed`] to the owning shard.
    pub fn fetch_failed(&self, id: impl Into<FileId>) -> bool {
        let id = id.into();
        self.shards[self.shard_of(id)]
            .lock()
            .fetch_failed(self.local(id))
    }

    /// True if the file is resident in its shard.
    pub fn contains(&self, id: impl Into<FileId>) -> bool {
        let id = id.into();
        self.shards[self.shard_of(id)]
            .lock()
            .contains(self.local(id))
    }

    /// Aggregated statistics across all shards (field-wise sum).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = *shard.lock().stats();
            total.read_hits += s.read_hits;
            total.read_misses += s.read_misses;
            total.read_hit_bytes += s.read_hit_bytes;
            total.read_miss_bytes += s.read_miss_bytes;
            total.writes += s.writes;
            total.evictions += s.evictions;
            total.evicted_bytes += s.evicted_bytes;
            total.stall_bytes += s.stall_bytes;
            total.purge_flush_bytes += s.purge_flush_bytes;
            total.writeback_bytes += s.writeback_bytes;
        }
        total
    }

    /// Total failed recall attempts across shards; see
    /// [`DiskCache::fetch_retries`].
    pub fn fetch_retries(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().fetch_retries()).sum()
    }

    /// Total bytes resident across shards.
    pub fn usage(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().usage()).sum()
    }

    /// Total files resident across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if nothing is cached in any shard.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn globalize(&self, op: CacheOp, shard: usize) -> CacheOp {
        match op {
            CacheOp::Fetch { id, bytes } => CacheOp::Fetch {
                id: self.global(id, shard),
                bytes,
            },
            CacheOp::Writeback { id, bytes } => CacheOp::Writeback {
                id: self.global(id, shard),
                bytes,
            },
            CacheOp::StallFlush { id, bytes } => CacheOp::StallFlush {
                id: self.global(id, shard),
                bytes,
            },
            CacheOp::PurgeFlush { id, bytes } => CacheOp::PurgeFlush {
                id: self.global(id, shard),
                bytes,
            },
            CacheOp::Drop { id, bytes } => CacheOp::Drop {
                id: self.global(id, shard),
                bytes,
            },
        }
    }
}

impl std::fmt::Debug for ShardedCache<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("resident", &self.len())
            .field("usage", &self.usage())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Lru, Stp};

    /// A deterministic mixed read/write sequence over a strided id
    /// space (so multi-shard runs spread files across shards).
    fn drive(n_files: usize, rounds: usize) -> Vec<(u64, u64, bool, i64)> {
        let mut seq = Vec::new();
        let mut t = 0i64;
        for round in 0..rounds {
            for f in 0..n_files {
                t += 30;
                let id = f as u64;
                let size = 100_000 + 50_000 * ((f as u64 + round as u64) % 7);
                let write = (f + round) % 5 == 0;
                seq.push((id, size, write, t));
            }
        }
        seq
    }

    #[test]
    fn one_shard_is_byte_identical_to_a_plain_disk_cache() {
        let policy = Stp::classic();
        let cfg = CacheConfig::with_capacity(1_500_000);
        let mut plain = DiskCache::new(cfg, &policy);
        let sharded = ShardedCache::new(cfg, &policy, 1);
        let mut plain_ops = Vec::new();
        let mut sharded_ops = Vec::new();
        for (id, size, write, t) in drive(40, 12) {
            if write {
                plain.write_with(id, size, t, None, &mut |op| plain_ops.push(op));
                sharded.write_with(id, size, t, None, 0.0, &mut |op| sharded_ops.push(op));
            } else {
                let a = plain.read_with(id, size, t, None, &mut |op| plain_ops.push(op));
                let b = sharded.read_with(id, size, t, None, 0.0, &mut |op| sharded_ops.push(op));
                assert_eq!(a, b, "classification diverged at id {id} t {t}");
                if a == ReadResult::Miss {
                    plain.fetch_complete(id);
                    sharded.fetch_complete(id);
                }
            }
        }
        assert_eq!(*plain.stats(), sharded.stats());
        assert_eq!(plain.usage(), sharded.usage());
        assert_eq!(plain.len(), sharded.len());
        assert_eq!(format!("{plain_ops:?}"), format!("{sharded_ops:?}"));
    }

    #[test]
    fn shards_partition_files_and_capacity_sums_exactly() {
        let policy = Lru;
        let cfg = CacheConfig::with_capacity(1_000_003);
        let sharded = ShardedCache::new(cfg, &policy, 4);
        assert_eq!(sharded.shard_count(), 4);
        // Insert a handful of small files; all stay resident.
        for id in 0u64..16 {
            sharded.write_with(id, 1_000, 10 + id as i64, None, 0.0, &mut |_| {});
        }
        assert_eq!(sharded.len(), 16);
        assert_eq!(sharded.usage(), 16_000);
        let stats = sharded.stats();
        assert_eq!(stats.writes, 16);
        // Per-shard capacities sum exactly to the configured total.
        let per: u64 = sharded.shards.iter().map(|s| s.lock().stats().writes).sum();
        assert_eq!(per, 16);
    }

    #[test]
    fn fetch_state_and_retries_route_to_the_owning_shard() {
        let policy = Lru;
        let sharded = ShardedCache::new(CacheConfig::with_capacity(10_000_000), &policy, 3);
        let miss = sharded.read_with(7u64, 5_000, 100, None, 0.0, &mut |_| {});
        assert_eq!(miss, ReadResult::Miss);
        // Outstanding fetch: a re-read is a delayed hit on the shard.
        let again = sharded.read_with(7u64, 5_000, 130, None, 0.0, &mut |_| {});
        assert_eq!(again, ReadResult::DelayedHit);
        assert!(sharded.fetch_failed(7u64));
        assert_eq!(sharded.fetch_retries(), 1);
        assert!(sharded.fetch_complete(7u64));
        let hit = sharded.read_with(7u64, 5_000, 160, None, 0.0, &mut |_| {});
        assert_eq!(hit, ReadResult::Hit);
        assert!(sharded.contains(7u64));
        assert!(!sharded.contains(8u64));
    }
}
