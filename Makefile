# Local verify == CI verify: each target below is exactly one CI job
# (.github/workflows/ci.yml). Run `make ci` before pushing.

CARGO ?= cargo

.PHONY: ci build test fmt lint bench doc examples bench-track clean

ci: build test fmt lint bench doc examples bench-track

build:
	$(CARGO) build --release --workspace --all-targets

test:
	$(CARGO) test --workspace -q

fmt:
	$(CARGO) fmt --all --check

lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

bench:
	$(CARGO) bench --no-run --workspace

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps

examples:
	set -e; for ex in examples/*.rs; do \
		name=$$(basename $$ex .rs); \
		echo "== example $$name =="; \
		$(CARGO) run --release --example $$name >/dev/null; \
	done

bench-track:
	$(CARGO) run --release -p fmig-bench --bin repro -- sweep --preset tiny --latency --out BENCH_sweep.json
	python3 ci/check_bench.py ci/bench_baseline.json BENCH_sweep.json

clean:
	$(CARGO) clean
