# Local verify == CI verify: each target below is exactly one CI job
# (.github/workflows/ci.yml). Run `make ci` before pushing.

CARGO ?= cargo

.PHONY: ci build test test-matrix fmt lint bench doc docs examples bench-track bench-scaling service-smoke ingest-smoke clean

ci: build test test-matrix fmt lint bench docs examples bench-track bench-scaling service-smoke ingest-smoke

build:
	$(CARGO) build --release --workspace --all-targets

test:
	$(CARGO) test --workspace -q

# The property-test matrix: the regression corpus (tests/corpus/) replays
# in every leg, then random sampling runs at two extra case budgets and
# stream seeds on top of the default `make test` leg. PROPTEST_CASES
# overrides the default per-property budget; FMIG_PROPTEST_SEED re-derives
# every property's RNG stream (corpus replay ignores both by design).
test-matrix:
	PROPTEST_CASES=128 FMIG_PROPTEST_SEED=20260729 $(CARGO) test --workspace -q
	PROPTEST_CASES=32 FMIG_PROPTEST_SEED=424242 $(CARGO) test --workspace -q

fmt:
	$(CARGO) fmt --all --check

lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

bench:
	$(CARGO) bench --no-run --workspace

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps

# doc plus the prose: every relative link in README.md and docs/*.md
# must resolve (ci/check_links.py).
docs: doc
	python3 ci/check_links.py README.md docs

examples:
	set -e; for ex in examples/*.rs; do \
		name=$$(basename $$ex .rs); \
		echo "== example $$name =="; \
		$(CARGO) run --release --example $$name >/dev/null; \
	done

bench-track:
	$(CARGO) run --release -p fmig-bench --bin repro -- sweep --preset tiny --latency --out BENCH_sweep.json
	python3 ci/check_bench.py ci/bench_baseline.json BENCH_sweep.json

# The dense-identity scaling gate: the tiny sweep plus the refs/sec
# curve across preset sizes (--scaling adds the tiny/large scaling_curve
# array and scaling_large_refs_per_sec to the artifact). check_bench.py
# gates scaling_speedup_vs_hashed — the dense-id replay's throughput
# over the frozen hashed baseline — plus the large preset's absolute
# refs/sec floor; --require-scaling makes a missing large-preset key a
# failure so that coverage cannot silently vanish.
bench-scaling:
	$(CARGO) run --release -p fmig-bench --bin repro -- sweep --preset tiny --latency --scaling --out BENCH_scaling.json
	python3 ci/check_bench.py --require-scaling ci/bench_baseline.json BENCH_scaling.json

# The live-service oracle gate: boots the real fmig-origin/fmig-served/
# fmig-loadgen binaries over loopback, replays the tiny-preset cell
# healthy and degraded-peak, and fails unless the live miss counters
# exactly equal the hierarchy simulator's and the p99 read wait lands
# within ±15% of its prediction. The healthy run's throughput is
# recorded as service_refs_per_sec in the artifact (report-only — not
# gated; absolute socket throughput shifts with runner generations).
service-smoke:
	$(CARGO) build --release -p fmig-serve -p fmig-bench
	$(CARGO) run --release -p fmig-bench --bin repro -- service-smoke --bench BENCH_sweep.json

# The trace-ingestion gate: imports the pinned fixture of every external
# format (tests/fixtures/ingest/), holds each import to its pinned
# manifest/census stats, replays one imported sweep cell at two worker
# counts (byte-identical or fail), and records the import throughput as
# ingest_refs_per_sec in the artifact (report-only — not gated; parsing
# throughput shifts with runner generations).
ingest-smoke:
	$(CARGO) run --release -p fmig-bench --bin repro -- ingest-smoke --bench BENCH_sweep.json

clean:
	$(CARGO) clean
