# Local verify == CI verify: each target below is exactly one CI job
# (.github/workflows/ci.yml). Run `make ci` before pushing.

CARGO ?= cargo

.PHONY: ci build test fmt lint bench clean

ci: build test fmt lint bench

build:
	$(CARGO) build --release --workspace --all-targets

test:
	$(CARGO) test --workspace -q

fmt:
	$(CARGO) fmt --all --check

lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

bench:
	$(CARGO) bench --no-run --workspace

clean:
	$(CARGO) clean
