//! Algorithmic invariants across crates: policy orderings, Belady
//! optimality, write-behind effects, dividing-point monotonicity.

use fmig_migrate::cache::{CacheConfig, DiskCache};
use fmig_migrate::dividing::DividingPointStudy;
use fmig_migrate::eval::{evaluate_policies, EvalConfig};
use fmig_migrate::policy::{standard_suite, Belady, MigrationPolicy, Stp};
use fmig_workload::{Workload, WorkloadConfig};

fn trace() -> Vec<fmig_trace::TraceRecord> {
    Workload::generate(&WorkloadConfig {
        scale: 0.004,
        seed: 23,
        ..WorkloadConfig::default()
    })
    .records()
    .collect()
}

#[test]
fn belady_never_loses_on_the_synthetic_trace() {
    let records = trace();
    let mut policies: Vec<Box<dyn MigrationPolicy>> = vec![Box::new(Belady)];
    policies.extend(standard_suite());
    let total: u64 = records.iter().map(|r| r.file_size).sum();
    let config = EvalConfig::with_capacity((total as f64 * 0.01) as u64);
    let outcomes = evaluate_policies(&records, &policies, &config);
    let belady = outcomes[0].miss_ratio;
    for o in &outcomes[1..] {
        assert!(
            belady <= o.miss_ratio + 1e-9,
            "Belady {belady} beaten by {} at {}",
            o.name,
            o.miss_ratio
        );
    }
}

#[test]
fn space_time_policies_beat_naive_ones_on_ncar_traffic() {
    // The Smith/Lawrie result: space-time-product style policies beat
    // pure-size and random orderings on supercomputer reference streams.
    let records = trace();
    let suite = standard_suite();
    let total: u64 = records.iter().map(|r| r.file_size).sum();
    let config = EvalConfig::with_capacity((total as f64 * 0.015) as u64);
    let outcomes = evaluate_policies(&records, &suite, &config);
    let get = |name: &str| {
        outcomes
            .iter()
            .find(|o| o.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .miss_ratio
    };
    let stp = get("STP(1.4)");
    assert!(stp < get("Random"), "STP {stp} vs random");
    assert!(stp < get("Smallest-first"), "STP {stp} vs smallest-first");
    assert!(stp < get("Largest-first"), "STP {stp} vs largest-first");
    assert!(stp <= get("FIFO") + 0.02, "STP {stp} vs FIFO");
}

#[test]
fn eager_writeback_removes_eviction_stalls() {
    let records = trace();
    let total: u64 = records.iter().map(|r| r.file_size).sum();
    let capacity = (total as f64 * 0.01) as u64;
    let stp = Stp::classic();
    let run = |eager: bool| {
        let mut cache = DiskCache::new(
            CacheConfig {
                eager_writeback: eager,
                ..CacheConfig::with_capacity(capacity)
            },
            &stp,
        );
        let mut id_of = std::collections::HashMap::new();
        for rec in records.iter().filter(|r| r.is_ok()) {
            let next = id_of.len() as u64;
            let id = *id_of.entry(rec.mss_path.clone()).or_insert(next);
            match rec.direction() {
                fmig_trace::Direction::Read => {
                    cache.read(id, rec.file_size.max(1), rec.start.as_unix(), None);
                }
                fmig_trace::Direction::Write => {
                    cache.write(id, rec.file_size.max(1), rec.start.as_unix(), None);
                }
            }
        }
        *cache.stats()
    };
    let eager = run(true);
    let lazy = run(false);
    assert_eq!(eager.stall_bytes, 0, "eager mode must never stall");
    assert!(
        lazy.stall_bytes > 0,
        "lazy mode must stall on dirty evictions"
    );
    // Hit behaviour is identical — write-behind changes when data moves,
    // not what is resident.
    assert_eq!(eager.read_hits, lazy.read_hits);
    assert_eq!(eager.read_misses, lazy.read_misses);
}

#[test]
fn dividing_point_response_is_monotone_while_feasible() {
    let workload = Workload::generate(&WorkloadConfig {
        scale: 0.004,
        seed: 23,
        ..WorkloadConfig::default()
    });
    let static_sizes: Vec<u64> = workload.files().iter().map(|f| f.size).collect();
    let accesses: Vec<u64> = workload
        .records()
        .filter(|r| r.is_ok())
        .map(|r| r.file_size)
        .collect();
    let study = DividingPointStudy::ncar();
    let thresholds: Vec<u64> = (0..=20).map(|i| i * 10_000_000).collect();
    let rows = study.sweep(&static_sizes, &accesses, &thresholds);
    for w in rows.windows(2) {
        assert!(
            w[1].mean_response_s <= w[0].mean_response_s + 1e-9,
            "mean response must fall as the threshold rises"
        );
        assert!(w[1].disk_resident_bytes >= w[0].disk_resident_bytes);
    }
}

#[test]
fn prefetcher_sees_the_sequential_sessions() {
    let workload = Workload::generate(&WorkloadConfig {
        scale: 0.004,
        seed: 23,
        ..WorkloadConfig::default()
    });
    let records: Vec<_> = workload.records().collect();
    let report = fmig_migrate::prefetch::daily(records.iter());
    assert!(report.reads > 0);
    // Sessions step through dataset files in order, so a healthy share
    // of reads is sequentially predictable.
    let hit = report.hit_fraction();
    assert!(hit > 0.18, "sequential predictability {hit}");
}
