//! Golden-report snapshot: the tiny-preset sweep JSON, byte for byte.
//!
//! The fixtures under `tests/fixtures/` were generated from the
//! closed-loop engine *before* the fault-injection subsystem landed, so
//! this test is simultaneously
//!
//! * a schema pin — any accidental field rename, float-formatting drift,
//!   or ordering change in [`fmig::SweepReport::to_json`] fails here
//!   first with a readable diff, and
//! * the zero-fault differential oracle — a sweep whose fault axis is
//!   `[FaultScenarioId::None]` must reproduce the pre-fault engine's
//!   report **byte-identically** (the fault plumbing may not perturb a
//!   single RNG draw, event, or formatted float on the no-fault path).
//!
//! Regenerating after an *intentional* schema or physics change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -q --test golden_report
//! ```
//!
//! then commit the rewritten `tests/fixtures/golden_tiny_*.json`
//! alongside the change that motivated it.

use fmig::{run_sweep, FaultScenarioId, SweepConfig};

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The pinned matrix: `SweepConfig::tiny()` with the fault axis forced
/// to the zero-fault plan, which must equal the pre-fault engine.
fn zero_fault_tiny() -> SweepConfig {
    SweepConfig {
        faults: vec![FaultScenarioId::None],
        ..SweepConfig::tiny()
    }
}

fn check_or_update(name: &str, current: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, current).expect("write fixture");
        eprintln!("updated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run UPDATE_GOLDEN=1",
            path.display()
        )
    });
    if golden != current {
        let diff_at = golden
            .lines()
            .zip(current.lines())
            .position(|(g, c)| g != c)
            .map(|i| {
                format!(
                    "first differing line {}:\n  golden:  {}\n  current: {}",
                    i + 1,
                    golden.lines().nth(i).unwrap_or(""),
                    current.lines().nth(i).unwrap_or("")
                )
            })
            .unwrap_or_else(|| "line counts differ".to_string());
        panic!(
            "{name} drifted from the golden fixture.\n{diff_at}\n\
             If the change is intentional, regenerate with \
             `UPDATE_GOLDEN=1 cargo test -q --test golden_report` and commit the fixture."
        );
    }
}

#[test]
fn tiny_open_loop_report_matches_golden() {
    let report = run_sweep(&zero_fault_tiny());
    check_or_update("golden_tiny_open.json", &report.to_json());
}

#[test]
fn tiny_latency_report_matches_golden() {
    let mut config = zero_fault_tiny();
    config.latency = true;
    let report = run_sweep(&config);
    check_or_update("golden_tiny_latency.json", &report.to_json());
}
