//! Workspace smoke test: the two invariants every future PR leans on.
//!
//! 1. The `repro` binary's `Study` pipeline (workload → simulation →
//!    analysis) runs end-to-end on a tiny preset and feeds the
//!    experiment registry.
//! 2. The compact trace codec (`fmig_trace::codec`) is lossless over a
//!    generated trace: write → read back reproduces every record
//!    exactly.

use std::io::Cursor;

use fmig_core::{experiment_ids, run_experiment, Study, StudyConfig};
use fmig_trace::time::TRACE_EPOCH;
use fmig_trace::{TraceReader, TraceWriter};

/// Small enough to finish in seconds, large enough to exercise every
/// stage (generation, simulation, analysis, experiments).
const SMOKE_SCALE: f64 = 0.001;

#[test]
fn study_pipeline_runs_end_to_end_on_a_tiny_preset() {
    let output = Study::new(StudyConfig::at_scale(SMOKE_SCALE)).run();

    assert!(
        !output.records.is_empty(),
        "tiny study generated no records"
    );
    assert_eq!(
        output.analysis.stats.raw_references,
        output.records.len() as u64,
        "analysis did not observe every record"
    );
    assert!(output.analysis.files.file_count() > 0);

    // Every registered experiment renders against this output — this is
    // exactly what `repro all` does.
    for id in experiment_ids() {
        let result = run_experiment(id, &output)
            .unwrap_or_else(|| panic!("experiment `{id}` is registered but did not run"));
        assert!(
            !result.render().trim().is_empty(),
            "experiment `{id}` rendered empty output"
        );
    }
}

#[test]
fn trace_codec_round_trip_is_lossless() {
    let records = Study::new(StudyConfig::at_scale(SMOKE_SCALE)).run().records;
    assert!(!records.is_empty());

    let mut writer = TraceWriter::new(Vec::new(), TRACE_EPOCH).expect("writer on Vec");
    for rec in &records {
        writer.write_record(rec).expect("encode record");
    }
    let encoded = writer.finish().expect("finish trace");

    let decoded: Vec<_> = TraceReader::new(Cursor::new(encoded))
        .expect("valid header")
        .collect::<Result<_, _>>()
        .expect("every record decodes");

    assert_eq!(decoded.len(), records.len(), "record count changed");
    for (i, (orig, back)) in records.iter().zip(&decoded).enumerate() {
        assert_eq!(orig, back, "record {i} changed across the round trip");
    }
}
