//! Workspace-level guarantees of imported-trace sweep cells:
//!
//! * a sweep over a columnar replay store is a pure function of the
//!   matrix — `workers = 1` and `workers = 8` produce byte-identical
//!   JSON reports;
//! * the streaming store replay in phase 2 is observationally equal to
//!   materializing the store and replaying it in memory;
//! * generated matrices keep the pre-ingestion JSON schema: the
//!   `"trace"` config key exists exactly when a store was imported.

use std::io::Cursor;
use std::path::PathBuf;

use fmig::{run_sweep, PolicyId, PresetId, SweepConfig};
use fmig_migrate::eval::{EvalConfig, PreparedRef, PreparedTrace};
use fmig_migrate::policy::standard_suite;
use fmig_trace::ingest::store::{import, StoreReader};
use fmig_trace::{FormatId, IngestConfig};

fn store_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fmig-imported-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic synthetic IBM-KV trace: a few thousand requests over
/// a skewed key population, with sizes spread enough that cache
/// fractions actually discriminate.
fn synthetic_kv_trace() -> String {
    let mut out = String::new();
    let mut state = 0x1993_u64;
    let mut step = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for i in 0..4000u64 {
        let ms = i * 750;
        let r = step();
        // Zipf-ish: a hot set of 16 keys takes half the traffic.
        let key = if r % 2 == 0 { r % 16 } else { 16 + r % 800 };
        let size = 1024 + (step() % 64) * 37_000;
        let verb = if step() % 10 < 7 { "GET" } else { "PUT" };
        out.push_str(&format!("{ms} REST.{verb}.OBJECT k{key:03} {size}\n"));
    }
    out
}

fn import_synthetic(tag: &str) -> PathBuf {
    let dir = store_dir(tag);
    let report = import(
        FormatId::IbmKv,
        Cursor::new(synthetic_kv_trace()),
        IngestConfig::default(),
        &dir,
        |e| panic!("synthetic trace must be clean: {e}"),
    )
    .expect("import");
    assert!(report.manifest.records > 0 && report.manifest.files > 0);
    dir
}

#[test]
fn imported_sweep_is_byte_identical_across_worker_counts() {
    let dir = import_synthetic("workers");
    let serial = SweepConfig {
        workers: 1,
        ..SweepConfig::imported(dir.to_str().expect("utf-8 temp path"))
    };
    let mut pooled = serial.clone();
    pooled.workers = 8;
    let a = run_sweep(&serial).to_json();
    let b = run_sweep(&pooled).to_json();
    assert_eq!(a, b, "worker count leaked into the imported report");
    // The imported schema is present...
    assert!(a.contains("\"trace\": "));
    assert!(a.contains("\"preset\": \"imported\""));
    assert!(a.contains("\"winners\""));
    // ...and the cells measured something real.
    assert!(a.contains("\"miss_ratio\": 0."));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn streaming_store_replay_matches_in_memory_replay() {
    // Phase 2 streams the store in chunks through the fused single-pass
    // curve engine; materializing the same rows and replaying them
    // per-capacity through DiskCache must agree bit for bit.
    let dir = import_synthetic("oracle");
    let config = SweepConfig::imported(dir.to_str().expect("utf-8 temp path"));
    let report = run_sweep(&config);
    assert_eq!(report.shards.len(), 1);
    let shard = &report.shards[0];

    let store = StoreReader::open(&dir).expect("open store");
    let refs: Vec<PreparedRef> = store
        .read_all()
        .expect("read store")
        .into_iter()
        .map(|row| PreparedRef {
            id: row.file,
            size: row.size,
            write: row.write,
            time: row.start,
            next_use: row.next_use,
            device: row.device,
        })
        .collect();
    assert_eq!(refs.len() as u64, store.manifest().records);
    let trace = PreparedTrace::from_refs(refs);

    let mut checked = 0;
    for cell in &shard.cells {
        let policy = suite_policy(cell.policy);
        let outcome = trace.replay(
            policy.as_ref(),
            &EvalConfig::with_capacity(cell.capacity_bytes),
        );
        assert_eq!(
            outcome.miss_ratio,
            cell.miss_ratio,
            "{} at {} bytes",
            cell.policy.name(),
            cell.capacity_bytes
        );
        assert_eq!(outcome.byte_miss_ratio, cell.byte_miss_ratio);
        checked += 1;
    }
    assert_eq!(
        checked,
        config.policies.len() * config.cache_fractions.len()
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Instantiates one policy through the same suite the sweep uses.
fn suite_policy(id: PolicyId) -> Box<dyn fmig_migrate::MigrationPolicy> {
    let _ = standard_suite(); // keep the import honest if names drift
    id.build()
}

#[test]
fn generated_matrices_keep_the_pre_ingestion_schema() {
    let mut cfg = SweepConfig::tiny();
    cfg.simulate_devices = false;
    cfg.faults = vec![fmig::FaultScenarioId::None];
    let json = run_sweep(&cfg).to_json();
    assert!(
        !json.contains("\"trace\""),
        "generated sweeps must not grow a trace key"
    );
    assert_eq!(PresetId::parse("imported"), Some(PresetId::Imported));
    assert!(
        !PresetId::ALL.contains(&PresetId::Imported),
        "ALL stays generator-only"
    );
}
