//! Cross-crate pipeline integration: codec round-trips under analysis,
//! simulation respects trace identity, experiments all render.

use std::io::Cursor;

use fmig_analysis::Analyzer;
use fmig_core::{experiment_ids, run_experiment, Study, StudyConfig};
use fmig_sim::{MssSimulator, SimConfig};
use fmig_trace::time::TRACE_EPOCH;
use fmig_trace::{TraceReader, TraceWriter};
use fmig_workload::{Workload, WorkloadConfig};

fn small_workload() -> Workload {
    Workload::generate(&WorkloadConfig {
        scale: 0.004,
        seed: 77,
        ..WorkloadConfig::default()
    })
}

#[test]
fn codec_roundtrip_preserves_all_analyses() {
    let workload = small_workload();
    let mut buf = Vec::new();
    let mut writer = TraceWriter::new(&mut buf, TRACE_EPOCH).expect("vec writer");
    for rec in workload.records() {
        writer.write_record(&rec).expect("write record");
    }
    writer.finish().expect("flush");

    let records: Result<Vec<_>, _> = TraceReader::new(Cursor::new(buf))
        .expect("valid header")
        .collect();
    let records = records.expect("all records parse");
    assert_eq!(records.len(), workload.len());

    let direct = Analyzer::analyze_owned(workload.records());
    let roundtrip = Analyzer::analyze(records.iter());
    assert_eq!(direct.stats, roundtrip.stats);
    assert_eq!(direct.files.file_count(), roundtrip.files.file_count());
    assert_eq!(direct.dirs.dir_count(), roundtrip.dirs.dir_count());
    assert_eq!(
        direct.files.repeat_within_8h_fraction(),
        roundtrip.files.repeat_within_8h_fraction()
    );
}

#[test]
fn simulation_preserves_record_identity_and_order() {
    let workload = small_workload();
    let input: Vec<_> = workload.records().collect();
    let run = MssSimulator::new(SimConfig::default()).run(input.clone());
    assert_eq!(run.records.len(), input.len());
    for (out, inp) in run.records.iter().zip(input.iter()) {
        assert_eq!(out.start, inp.start);
        assert_eq!(out.mss_path, inp.mss_path);
        assert_eq!(out.file_size, inp.file_size);
        assert_eq!(out.direction(), inp.direction());
        assert_eq!(out.error, inp.error);
    }
    // Successful requests got a transfer time consistent with ~2 MB/s.
    for rec in run
        .records
        .iter()
        .filter(|r| r.is_ok() && r.file_size > 1_000_000)
    {
        let mbps = rec.file_size as f64 / 1e6 / (rec.transfer_ms as f64 / 1000.0);
        assert!((1.4..3.5).contains(&mbps), "rate {mbps} MB/s");
    }
}

#[test]
fn every_experiment_runs_and_renders() {
    let mut config = StudyConfig::at_scale(0.004);
    config.workload.seed = 5;
    let output = Study::new(config).run();
    for id in experiment_ids() {
        let result =
            run_experiment(id, &output).unwrap_or_else(|| panic!("experiment {id} missing"));
        let text = result.render();
        assert!(text.contains(id), "{id} render lacks its id");
        assert!(text.len() > 100, "{id} render suspiciously short");
        for c in &result.comparisons {
            assert!(
                c.paper.is_finite() && c.measured.is_finite(),
                "{id}: non-finite comparison {c:?}"
            );
        }
    }
    assert_eq!(run_experiment("nonsense", &output).map(|r| r.id), None);
}

#[test]
fn deduped_trace_feeds_back_through_the_simulator() {
    // §6-b end to end: dedup the trace, re-simulate, and confirm the MSS
    // sees strictly less work with no lost files.
    let workload = small_workload();
    let records: Vec<_> = workload.records().collect();
    let deduped = fmig_migrate::dedup::filter(&records, 8 * 3600);
    assert!(deduped.len() < records.len());
    let before = Analyzer::analyze(records.iter());
    let after = Analyzer::analyze(deduped.iter());
    // Dedup never loses a file, only repeat requests.
    assert_eq!(before.files.file_count(), after.files.file_count());
    // And the deduped trace still simulates cleanly.
    let run = MssSimulator::new(SimConfig::default()).run(deduped);
    assert_eq!(
        run.metrics.requests as usize,
        after.stats.raw_references as usize
    );
}

#[test]
fn deferred_writes_trace_is_valid_and_complete() {
    let workload = small_workload();
    let records: Vec<_> = workload.records().collect();
    let deferred = fmig_migrate::writeback::defer_writes(&records);
    assert_eq!(deferred.len(), records.len());
    // Still sorted, still simulable.
    for w in deferred.windows(2) {
        assert!(w[0].start <= w[1].start);
    }
    let run = MssSimulator::new(SimConfig::default()).run(deferred);
    assert_eq!(run.records.len(), records.len());
}

#[test]
fn different_seeds_differ_same_seeds_agree() {
    let a = Workload::generate(&WorkloadConfig {
        scale: 0.002,
        seed: 1,
        ..WorkloadConfig::default()
    });
    let b = Workload::generate(&WorkloadConfig {
        scale: 0.002,
        seed: 1,
        ..WorkloadConfig::default()
    });
    let c = Workload::generate(&WorkloadConfig {
        scale: 0.002,
        seed: 2,
        ..WorkloadConfig::default()
    });
    assert_eq!(a, b);
    assert_ne!(a, c);
}
