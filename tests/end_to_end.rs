//! End-to-end integration: the full study pipeline reproduces the
//! paper's qualitative shape at small scale.
//!
//! These are the repository's acceptance tests: every headline claim of
//! Miller & Katz (1993) is asserted with a tolerance wide enough for a
//! small-scale synthetic run but tight enough to catch a broken model.

use fmig_core::{Study, StudyConfig};
use fmig_trace::time::{CivilDate, Timestamp};
use fmig_trace::{DeviceClass, Direction};

fn study() -> fmig_core::StudyOutput {
    let mut config = StudyConfig::at_scale(0.02);
    config.workload.seed = 0x1993;
    Study::new(config).run()
}

#[test]
fn read_write_mix_matches_table3() {
    let out = study();
    let s = &out.analysis.stats;
    // 2:1 reads by references (paper: 66.5%).
    let share = s.read_reference_share();
    assert!((0.58..0.72).contains(&share), "read share {share}");
    // Reads carry more of the bytes (paper: 73%).
    let bytes = s.read_byte_share();
    assert!(bytes > 0.58, "read byte share {bytes}");
    // Errors ~4.76%.
    assert!((s.error_fraction() - 0.0476).abs() < 0.01);
    // Device mix: disk majority, silo next, manual smallest (Table 3).
    let shares = s.device_reference_shares();
    assert!(shares[0].fraction > 0.55, "disk {}", shares[0].fraction);
    assert!(shares[1].fraction > shares[2].fraction, "silo < manual");
    assert!(
        (0.05..0.20).contains(&shares[2].fraction),
        "manual share {}",
        shares[2].fraction
    );
}

#[test]
fn average_transfer_sizes_match_table3() {
    let out = study();
    let s = &out.analysis.stats;
    let read_mb = s.reads.total.avg_file_size_mb();
    let write_mb = s.writes.total.avg_file_size_mb();
    assert!((20.0..36.0).contains(&read_mb), "avg read {read_mb} MB");
    assert!((15.0..30.0).contains(&write_mb), "avg write {write_mb} MB");
    // Per-device size ordering: disk small, silo large (Table 3).
    let disk = s.reads.device(DeviceClass::Disk).avg_file_size_mb();
    let silo = s.reads.device(DeviceClass::TapeSilo).avg_file_size_mb();
    assert!(disk < 10.0, "disk avg {disk}");
    assert!(silo > 50.0, "silo avg {silo}");
}

#[test]
fn periodicity_matches_figures_4_and_5() {
    let out = study();
    let hourly = &out.analysis.hourly;
    // Reads strongly diurnal; writes nearly flat (Figure 4).
    let read_pt = hourly.peak_to_trough(Direction::Read);
    let write_pt = hourly.peak_to_trough(Direction::Write);
    assert!(read_pt > 2.5, "read peak/trough {read_pt}");
    assert!(write_pt < read_pt, "writes should be flatter than reads");
    assert!(write_pt < 3.0, "write peak/trough {write_pt}");
    // Weekend dip for reads, not writes (Figure 5).
    let weekly = &out.analysis.weekly;
    let read_weekend = weekly.weekend_to_weekday(Direction::Read);
    let write_weekend = weekly.weekend_to_weekday(Direction::Write);
    assert!(read_weekend < 0.75, "read weekend ratio {read_weekend}");
    assert!(write_weekend > 0.7, "write weekend ratio {write_weekend}");
}

#[test]
fn growth_and_holidays_match_figure_6() {
    let out = study();
    let weeks = &out.analysis.weeks;
    assert!(weeks.weeks() >= 100, "weeks observed {}", weeks.weeks());
    // Reads grow across the trace; writes do not (Figure 6).
    let read_growth = weeks.growth_ratio(Direction::Read);
    let write_growth = weeks.growth_ratio(Direction::Write);
    assert!(read_growth > 1.25, "read growth {read_growth}");
    assert!(write_growth < read_growth, "writes grew faster than reads");
    // Christmas 1991 dents reads.
    let xmas = Timestamp::from_civil(CivilDate::new(1991, 12, 25), 12, 0, 0);
    let dip = weeks.dip_ratio(Direction::Read, xmas);
    assert!(dip < 0.9, "christmas read dip ratio {dip}");
}

#[test]
fn request_clustering_matches_figure_7() {
    let out = study();
    let gaps = &out.analysis.gaps;
    // Strong clustering: far more short gaps than a Poisson process of
    // the same mean rate would give.
    let under10 = gaps.fraction_le(10.0);
    let poisson_baseline = 1.0 - (-10.0 / gaps.mean_gap_s()).exp();
    assert!(
        under10 > 5.0 * poisson_baseline,
        "clustering {under10} vs poisson {poisson_baseline}"
    );
    assert!(under10 > 0.22, "short-gap fraction {under10}");
}

#[test]
fn file_reference_counts_match_figure_8() {
    let out = study();
    let f = &out.analysis.files;
    assert!(
        (0.40..0.60).contains(&f.never_read()),
        "never read {}",
        f.never_read()
    );
    assert!(
        (0.13..0.30).contains(&f.never_written()),
        "never written {}",
        f.never_written()
    );
    assert!(
        (0.47..0.67).contains(&f.accessed_once()),
        "accessed once {}",
        f.accessed_once()
    );
    assert!(
        (0.34..0.54).contains(&f.write_once_never_read()),
        "write-once-never-read {}",
        f.write_once_never_read()
    );
    assert_eq!(f.median_references(), 1, "median references");
    let over10 = f.referenced_more_than(10);
    assert!((0.005..0.10).contains(&over10), ">10 refs {over10}");
}

#[test]
fn interreference_intervals_match_figure_9() {
    let out = study();
    let f = &out.analysis.files;
    let under_1d = f.intervals_under_1d();
    assert!((0.50..0.88).contains(&under_1d), "intervals <1d {under_1d}");
    // The year-long tail exists.
    let over_100d = 1.0 - f.interval_fraction_le(100.0 * 86_400.0);
    assert!(over_100d > 0.002, "long tail {over_100d}");
}

#[test]
fn size_distributions_match_figures_10_and_11() {
    let out = study();
    let d = &out.analysis.dynamic_sizes;
    // Figure 10: a large share of requests are small, carrying little data.
    let small_requests = d.fraction_le(1e6);
    assert!(
        (0.25..0.55).contains(&small_requests),
        "<=1MB requests {small_requests}"
    );
    assert!(d.data_fraction_le(1e6) < 0.05);
    // Figure 11: half-ish of files are small and hold a sliver of data.
    let h = out.analysis.files.size_histogram();
    let files_3mb = h.fraction_le(3e6);
    let data_3mb = h.weight_fraction_le(3e6);
    assert!((0.30..0.60).contains(&files_3mb), "files <3MB {files_3mb}");
    assert!(data_3mb < 0.06, "data <3MB {data_3mb}");
    // Mean stored file ~25 MB (Table 4).
    let mean_mb = out.analysis.files.avg_file_mb();
    assert!((17.0..33.0).contains(&mean_mb), "avg file {mean_mb} MB");
}

#[test]
fn directory_shape_matches_figure_12() {
    let out = study();
    let dirs = &out.analysis.dirs;
    assert!(dirs.dir_count() > 500, "dirs {}", dirs.dir_count());
    let le10 = dirs.fraction_with_at_most(10);
    assert!(le10 > 0.75, "dirs <=10 files {le10}");
    let top5 = dirs.files_in_top_dirs(0.05);
    assert!((0.35..0.90).contains(&top5), "top-5% share {top5}");
    assert!(dirs.max_depth() <= 12, "depth {}", dirs.max_depth());
    // A large share of files live in big directories (the full-scale
    // figure is >50%; the largest-directory cap shrinks with scale).
    assert!(dirs.files_in_dirs_larger_than(100) > 0.2);
}

#[test]
fn simulated_latencies_match_figure_3_shape() {
    let out = study();
    let lat = &out.analysis.latency;
    let disk = lat.device_mean(DeviceClass::Disk);
    let silo = lat.device_mean(DeviceClass::TapeSilo);
    let manual = lat.device_mean(DeviceClass::TapeManual);
    assert!(
        disk < silo && silo < manual,
        "ordering {disk} {silo} {manual}"
    );
    // The silo reaches the first byte well before the operator does.
    assert!(manual / silo > 1.5, "manual/silo {}", manual / silo);
    // Disk median in single-digit seconds (paper: 4 s).
    let disk_median = lat.device_median(DeviceClass::Disk);
    assert!(disk_median <= 10.0, "disk median {disk_median}");
    // Writes reach the first byte faster than reads (paper's §6 pivot).
    assert!(
        lat.direction_mean(Direction::Write) < lat.direction_mean(Direction::Read),
        "write latency should undercut reads"
    );
    // ~10% of manual requests exceed 400 s (Figure 3).
    let slow = 1.0 - lat.device_fraction_le(DeviceClass::TapeManual, 400.0);
    assert!((0.01..0.35).contains(&slow), "manual >400s fraction {slow}");
}

#[test]
fn eight_hour_repeats_match_section_6() {
    let out = study();
    let frac = out.analysis.files.repeat_within_8h_fraction();
    assert!((0.20..0.47).contains(&frac), "8h repeat fraction {frac}");
}
