//! Dense-identity equivalence: the [`fmig_trace::FileId`] / arena
//! replay path must be **bit-identical** to the historical string-keyed
//! path it replaced.
//!
//! The redesign's contract is that interning assigns ids in first
//! appearance order exactly as the old `HashMap<String, u64>` plumbing
//! did, and that every downstream tie-break keys on the same raw value
//! — so swapping hash probes for arena indexing must change *nothing*
//! observable: not one miss, not one victim, not one byte of the
//! report. The frozen pre-redesign implementation lives in
//! [`fmig_migrate::hashed`] as the oracle; these tests replay the same
//! traces through both and compare stats, full side-effect op streams
//! (which embed the victim sequence), and the rendered report line.

use proptest::prelude::*;

use fmig::PresetId;
use fmig_migrate::cache::{CacheConfig, CacheOp, CacheStats, DiskCache, ReadResult};
use fmig_migrate::eval::{prepare, EvalConfig};
use fmig_migrate::hashed;
use fmig_migrate::policy::{standard_suite, Belady, Lru, MigrationPolicy, Stp};
use fmig_trace::time::TRACE_EPOCH;
use fmig_trace::{Endpoint, TraceRecord};
use fmig_workload::Workload;

/// Open-loop dense replay with the op stream captured — the live
/// pipeline (`TracePrep` → `DiskCache`) making exactly the decisions
/// `PreparedTrace::replay` makes, plus visibility into every victim.
fn dense_replay(
    records: &[TraceRecord],
    policy: &dyn MigrationPolicy,
    config: &EvalConfig,
) -> (CacheStats, Vec<CacheOp>) {
    let prepared = prepare(records.iter());
    let mut cache = DiskCache::new(config.cache, policy);
    cache.set_est_miss_wait_s(config.wait_s_per_miss);
    let mut ops = Vec::new();
    for r in prepared.refs() {
        if r.write {
            cache.write_with(r.id, r.size, r.time, r.next_use, &mut |op| ops.push(op));
        } else if cache.read_with(r.id, r.size, r.time, r.next_use, &mut |op| ops.push(op))
            == ReadResult::Miss
        {
            cache.fetch_complete(r.id);
        }
    }
    (*cache.stats(), ops)
}

/// The per-policy report line a sweep cell renders from these stats:
/// if every float formats identically the JSON cell is byte-identical.
fn report_line(name: &str, stats: &CacheStats, config: &EvalConfig) -> String {
    format!(
        "{{\"policy\":\"{}\",\"miss_ratio\":{},\"byte_miss_ratio\":{},\"person_minutes_per_day\":{},\"evictions\":{},\"stall_bytes\":{}}}",
        name,
        stats.miss_ratio(),
        stats.byte_miss_ratio(),
        stats.person_minutes_per_day(config.wait_s_per_miss, config.trace_days),
        stats.evictions,
        stats.stall_bytes,
    )
}

fn eval_config(capacity: u64) -> EvalConfig {
    EvalConfig {
        cache: CacheConfig::with_capacity(capacity),
        wait_s_per_miss: 58.0,
        trace_days: 7.0,
    }
}

/// The satellite requirement verbatim: on the tiny sweep preset, every
/// shipped policy replays bit-identically through the dense path and
/// the string-keyed oracle — miss ratios, victim sequence (op stream),
/// and the rendered report.
#[test]
fn tiny_preset_replay_is_bit_identical_across_all_shipped_policies() {
    let workload = Workload::generate(&PresetId::Ncar.workload(0.002, 0x1D_EA_11));
    let records: Vec<TraceRecord> = workload.into_records().collect();
    assert!(
        records.len() > 1_000,
        "tiny preset produced a trivial trace"
    );
    let referenced: u64 = records.iter().map(|r| r.file_size.max(1)).sum();
    // Small enough to force heavy purge traffic on every policy.
    let config = eval_config((referenced / 50).max(1));

    for policy in standard_suite() {
        let (dense_stats, dense_ops) = dense_replay(&records, policy.as_ref(), &config);
        let (hashed_stats, hashed_ops) = hashed::replay_records(&records, policy.as_ref(), &config);
        assert_eq!(
            dense_stats,
            hashed_stats,
            "stats diverged under {}",
            policy.name()
        );
        assert!(
            dense_stats.evictions > 0,
            "{} never purged; the equivalence check is vacuous",
            policy.name()
        );
        assert_eq!(
            dense_ops,
            hashed_ops,
            "op stream (victim sequence) diverged under {}",
            policy.name()
        );
        assert_eq!(
            report_line(&policy.name(), &dense_stats, &config),
            report_line(&policy.name(), &hashed_stats, &config),
            "rendered report diverged under {}",
            policy.name()
        );
    }
}

prop_compose! {
    fn arb_ref()(
        write in any::<bool>(),
        dt in 0i64..900,
        size in 1u64..64_000_000,
        path_seed in 0u32..60,
        err_roll in 0u8..10,
    ) -> (bool, i64, u64, u32, bool) {
        (write, dt, size, path_seed, err_roll == 0)
    }
}

fn build_records(specs: &[(bool, i64, u64, u32, bool)]) -> Vec<TraceRecord> {
    let mut t = TRACE_EPOCH;
    let mut records = Vec::with_capacity(specs.len());
    for &(write, dt, size, path_seed, errored) in specs {
        t = t.add_secs(dt);
        let path = format!("/u/{}/data{}", path_seed % 9, path_seed);
        let mut rec = if write {
            TraceRecord::write(Endpoint::MssTapeSilo, t, size, path, 7)
        } else {
            TraceRecord::read(Endpoint::MssTapeSilo, t, size, path, 7)
        };
        if errored {
            rec.error = fmig_trace::ErrorKind::from_code(1);
        }
        records.push(rec);
    }
    records
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary sorted streams (including errored records, which both
    /// paths must skip identically) replay bit-identically under an
    /// index-friendly policy (LRU), a rescan policy (STP), and the
    /// clairvoyant one that exercises the next-use reverse sweep
    /// (Belady).
    #[test]
    fn random_streams_replay_bit_identically(
        specs in proptest::collection::vec(arb_ref(), 1..300),
        cap_divisor in 2u64..200,
    ) {
        let records = build_records(&specs);
        let referenced: u64 = records.iter().map(|r| r.file_size.max(1)).sum();
        let config = eval_config((referenced / cap_divisor).max(1));
        let policies: [&dyn MigrationPolicy; 3] = [&Lru, &Stp::classic(), &Belady];
        for policy in policies {
            let (dense_stats, dense_ops) = dense_replay(&records, policy, &config);
            let (hashed_stats, hashed_ops) = hashed::replay_records(&records, policy, &config);
            prop_assert_eq!(dense_stats, hashed_stats);
            prop_assert_eq!(dense_ops, hashed_ops);
        }
    }
}
