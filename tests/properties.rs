//! Cross-crate property tests and failure injection.
//!
//! These push randomized and adversarial inputs through the public APIs:
//! arbitrary request streams through the simulator, garbage bytes through
//! the trace parser, random configurations through the generator, and
//! random operation sequences through the policy cache.

use proptest::prelude::*;

use fmig_migrate::cache::{CacheConfig, CacheOp, DiskCache};
use fmig_migrate::policy::{Lru, LruMad, MigrationPolicy, Stp};
use fmig_sim::{MssSimulator, SimConfig};
use fmig_trace::time::{Timestamp, TRACE_EPOCH};
use fmig_trace::{Endpoint, ErrorKind, TraceReader, TraceRecord};
use fmig_workload::{Workload, WorkloadConfig};

fn arb_endpoint() -> impl Strategy<Value = Endpoint> {
    prop_oneof![
        Just(Endpoint::MssDisk),
        Just(Endpoint::MssTapeSilo),
        Just(Endpoint::MssTapeManual),
    ]
}

prop_compose! {
    fn arb_request()(
        ep in arb_endpoint(),
        write in any::<bool>(),
        dt in 0i64..600,
        size in 1u64..200_000_000,
        err in 0u8..8,
        uid in 0u32..50,
        path_seed in 0u32..40,
    ) -> (Endpoint, bool, i64, u64, Option<ErrorKind>, u32, u32) {
        (ep, write, dt, size, ErrorKind::from_code(err), uid, path_seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulator accepts any sorted request stream without panicking,
    /// conserves records, and produces sane annotations.
    #[test]
    fn simulator_is_total_on_sorted_streams(
        specs in proptest::collection::vec(arb_request(), 1..120)
    ) {
        let mut t = TRACE_EPOCH;
        let mut records = Vec::new();
        for (ep, write, dt, size, err, uid, path_seed) in specs {
            t = t.add_secs(dt);
            let path = format!("/p/{}/{}", path_seed % 7, path_seed);
            let mut rec = if write {
                TraceRecord::write(ep, t, size, path, uid)
            } else {
                TraceRecord::read(ep, t, size, path, uid)
            };
            rec.error = err;
            records.push(rec);
        }
        let run = MssSimulator::new(SimConfig::default()).run(records.clone());
        prop_assert_eq!(run.records.len(), records.len());
        for (out, inp) in run.records.iter().zip(records.iter()) {
            prop_assert_eq!(&out.mss_path, &inp.mss_path);
            // First byte never precedes the request.
            prop_assert!(out.first_byte_at() >= out.start);
            if out.is_ok() {
                prop_assert!(out.transfer_ms > 0 || out.file_size < 1000);
            } else {
                prop_assert_eq!(out.transfer_ms, 0);
            }
        }
        prop_assert_eq!(run.metrics.requests, records.len() as u64);
    }

    /// Arbitrary bytes never panic the trace parser: every line either
    /// parses or yields a structured error.
    #[test]
    fn trace_parser_is_total_on_garbage(
        lines in proptest::collection::vec("[ -~]{0,60}", 0..40)
    ) {
        let mut text = String::from("# fmig-trace v1\n# epoch 0\n");
        for line in &lines {
            text.push_str(line);
            text.push('\n');
        }
        let reader = TraceReader::new(std::io::Cursor::new(text.into_bytes()))
            .expect("valid header");
        // Drain: no panic is the property; errors are fine.
        let mut ok = 0usize;
        let mut bad = 0usize;
        for item in reader {
            match item {
                Ok(_) => ok += 1,
                Err(_) => bad += 1,
            }
        }
        prop_assert!(ok + bad <= lines.len());
    }

    /// The policy cache never exceeds capacity and keeps its counters
    /// consistent under arbitrary operation sequences.
    #[test]
    fn cache_invariants_hold_under_random_ops(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u64..30, 1u64..800, 0i64..100_000),
            1..300,
        ),
        capacity in 500u64..5_000,
    ) {
        let stp = Stp::classic();
        let mut cache = DiskCache::new(CacheConfig::with_capacity(capacity), &stp);
        let mut sorted_ops = ops;
        sorted_ops.sort_by_key(|&(_, _, _, t)| t);
        for (write, id, size, t) in sorted_ops {
            if write {
                cache.write(id, size, t, None);
            } else {
                let hit = cache.read(id, size, t, None);
                // A hit implies residency before the call.
                if hit {
                    prop_assert!(cache.contains(id));
                }
            }
            prop_assert!(cache.usage() <= capacity, "usage over capacity");
        }
        let s = cache.stats();
        prop_assert!(s.read_hits + s.read_misses + s.writes >= 1);
        prop_assert!(s.stall_bytes <= s.writeback_bytes);
    }

    /// With zero miss-latency feedback, LRU-MAD's aggregate-delay
    /// denominator is exactly 1.0, so its victim sequence — every
    /// eviction, in order — is identical to plain LRU's on any
    /// operation stream. This pins the open-loop degradation contract
    /// end-to-end through the cache, not just at the priority function.
    #[test]
    fn zero_feedback_lru_mad_evicts_in_lru_order(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u64..30, 1u64..800, 0i64..100_000),
            1..300,
        ),
        capacity in 500u64..5_000,
    ) {
        fn victims(policy: &dyn MigrationPolicy, ops: &[(bool, u64, u64, i64)], capacity: u64)
            -> (Vec<fmig_trace::FileId>, u64, u64)
        {
            let mut cache = DiskCache::new(CacheConfig::with_capacity(capacity), policy);
            // Explicit, not just default: the degradation contract is
            // about a zero estimate, whatever the cache saw before.
            cache.set_est_miss_wait_s(0.0);
            let mut seq = Vec::new();
            let mut sink = |op: CacheOp| match op {
                CacheOp::StallFlush { id, .. }
                | CacheOp::PurgeFlush { id, .. }
                | CacheOp::Drop { id, .. } => seq.push(id),
                CacheOp::Fetch { .. } | CacheOp::Writeback { .. } => {}
            };
            for &(write, id, size, t) in ops {
                if write {
                    cache.write_with(id, size, t, None, &mut sink);
                } else {
                    cache.read_with(id, size, t, None, &mut sink);
                }
            }
            let s = cache.stats();
            (seq, s.read_hits, s.read_misses)
        }
        let mut sorted_ops = ops;
        sorted_ops.sort_by_key(|&(_, _, _, t)| t);
        let lru = victims(&Lru, &sorted_ops, capacity);
        let mad = victims(&LruMad::classic(), &sorted_ops, capacity);
        prop_assert_eq!(lru, mad);
    }

    /// LRU and STP agree on trivial workloads that fit entirely in cache
    /// (no evictions => identical hit sequences).
    #[test]
    fn policies_agree_when_nothing_is_evicted(
        ids in proptest::collection::vec(0u64..10, 1..80)
    ) {
        let lru = Lru;
        let stp = Stp::classic();
        let mut a = DiskCache::new(CacheConfig::with_capacity(u64::MAX), &lru);
        let mut b = DiskCache::new(CacheConfig::with_capacity(u64::MAX), &stp);
        for (t, &id) in ids.iter().enumerate() {
            let ha = a.read(id, 100, t as i64, None);
            let hb = b.read(id, 100, t as i64, None);
            prop_assert_eq!(ha, hb);
        }
        prop_assert_eq!(a.stats().read_misses, b.stats().read_misses);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The generator upholds its invariants for arbitrary small
    /// configurations: sorted, in-window, capped sizes, error fraction
    /// near the configured value.
    #[test]
    fn generator_invariants_hold_for_random_configs(
        seed in any::<u64>(),
        scale in 0.0005f64..0.004,
        echo in 0.05f64..0.4,
        error in 0.0f64..0.12,
    ) {
        let config = WorkloadConfig {
            scale,
            seed,
            echo_probability: echo,
            error_fraction: error,
            ..WorkloadConfig::default()
        };
        let w = Workload::generate(&config);
        prop_assert!(!w.is_empty());
        let mut prev = Timestamp::from_unix(i64::MIN);
        let mut errors = 0u64;
        for rec in w.records() {
            prop_assert!(rec.start >= prev, "unsorted");
            prev = rec.start;
            prop_assert!(rec.start.in_trace_window(), "outside window");
            prop_assert!(rec.file_size <= config.max_file_bytes);
            if rec.error.is_some() {
                errors += 1;
            }
        }
        let frac = errors as f64 / w.len() as f64;
        prop_assert!((frac - error).abs() < 0.03, "error fraction {frac} vs {error}");
    }
}
