//! Dedicated integration coverage for the four `fmig-migrate` study
//! modules that previously had none outside their own unit tests:
//! request dedup (§6-b), sequential prefetch (§5.2.1), lazy write-behind
//! (§6-d), and the disk/tape dividing point (§6-c). Each gets targeted
//! scenario tests plus at least one property test over randomized
//! traces.

use fmig_migrate::{dedup, dividing, prefetch, writeback};
use fmig_trace::time::{HOUR, TRACE_EPOCH};
use fmig_trace::{Direction, Endpoint, TraceRecord};
use proptest::prelude::*;

fn read(path: &str, t: i64) -> TraceRecord {
    TraceRecord::read(Endpoint::MssTapeSilo, TRACE_EPOCH.add_secs(t), 10, path, 1)
}

fn write(path: &str, t: i64) -> TraceRecord {
    TraceRecord::write(Endpoint::MssTapeSilo, TRACE_EPOCH.add_secs(t), 10, path, 1)
}

/// A randomized, time-sorted trace over a small path population, with a
/// sprinkling of writes and errored records.
fn random_trace(steps: &[(u8, u8, bool)]) -> Vec<TraceRecord> {
    let mut t = 0i64;
    steps
        .iter()
        .map(|&(gap, file, is_write)| {
            t += i64::from(gap) * 1200;
            let path = format!("/exp/run{:03}", file % 12);
            let mut rec = if is_write {
                write(&path, t)
            } else {
                read(&path, t)
            };
            if file == 255 {
                rec.error = Some(fmig_trace::ErrorKind::FileNotFound);
            }
            rec
        })
        .collect()
}

// ---------------------------------------------------------------- dedup

#[test]
fn dedup_savings_follow_the_batch_script_shape() {
    // A "batch script" pattern: every job re-requests the same input
    // three times within minutes — two thirds of those are absorbable.
    let mut records = Vec::new();
    for job in 0..20i64 {
        for burst in 0..3 {
            records.push(read("/input/data", job * 2 * HOUR + burst * 300));
        }
    }
    let report = dedup::eight_hour(records.iter());
    assert_eq!(report.total, 60);
    assert!(report.savings() > 0.6, "savings {}", report.savings());
    // Filtering at the same window leaves nothing more to save.
    let filtered = dedup::filter(&records, 8 * HOUR);
    assert_eq!(dedup::eight_hour(filtered.iter()).duplicates, 0);
}

proptest! {
    /// Dedup invariants on arbitrary traces: duplicates never exceed
    /// examined requests, filtering is idempotent and exactly removes
    /// the counted duplicates, and widening the window only finds more.
    #[test]
    fn dedup_filter_is_idempotent_and_consistent_with_analyze(
        steps in proptest::collection::vec((0u8..4, 0u8..14, any::<bool>()), 0..120),
        window_idx in 0usize..4,
    ) {
        let windows = [0i64, HOUR, 8 * HOUR, 48 * HOUR];
        let window = windows[window_idx];
        let records = random_trace(&steps);
        let report = dedup::analyze(records.iter(), window);
        prop_assert!(report.duplicates <= report.total);
        let filtered = dedup::filter(&records, window);
        // Every record filter drops is within the window of the last
        // *kept* record, hence also of its previous occurrence — so
        // filter can never drop more than analyze counted. (It can drop
        // fewer: analyze slides its anchor along chained duplicates,
        // filter keeps it at the cluster head.)
        let ok = |rs: &[TraceRecord]| rs.iter().filter(|r| r.error.is_none()).count() as u64;
        prop_assert!(ok(&filtered) >= report.total - report.duplicates);
        prop_assert!(ok(&filtered) <= report.total);
        prop_assert_eq!(dedup::analyze(filtered.iter(), window).duplicates, 0);
        let refiltered = dedup::filter(&filtered, window);
        prop_assert_eq!(&refiltered, &filtered);
        // Monotone in the window.
        for pair in dedup::window_sweep(&records, &windows).windows(2) {
            prop_assert!(pair[1].duplicates >= pair[0].duplicates);
        }
    }
}

// ------------------------------------------------------------- prefetch

#[test]
fn prefetch_credits_resumed_sequences_once_per_step() {
    // day000..day004 read in order, then the sequence resumes after a
    // long gap: the stale step must not be credited.
    let mut records: Vec<_> = (0..5)
        .map(|i| read(&format!("/ccm/day{i:03}"), i * 600))
        .collect();
    records.push(read("/ccm/day005", 5 * 600 + 72 * HOUR));
    let r = prefetch::daily(records.iter());
    assert_eq!(r.reads, 6);
    assert_eq!(r.predicted, 4, "the post-gap step is stale");
}

proptest! {
    /// Prefetch invariants: predictions and waste are bounded by the
    /// read count, and the sequence parser round-trips any well-formed
    /// `dir/stem###` path it could have produced.
    #[test]
    fn prefetch_counts_are_bounded_and_parser_round_trips(
        steps in proptest::collection::vec((0u8..4, 0u8..14, any::<bool>()), 0..120),
        seq in 0u64..100_000,
        stem in "[a-z]{1,8}",
    ) {
        let records = random_trace(&steps);
        let r = prefetch::analyze(records.iter(), 24 * HOUR);
        prop_assert!(r.predicted <= r.reads);
        prop_assert!(r.wasted <= r.reads);
        prop_assert!((0.0..=1.0).contains(&r.hit_fraction()));
        prop_assert!((0.0..=1.0).contains(&r.waste_fraction()));
        // Round-trip: a canonical sequence path parses back exactly.
        let path = format!("/a/b/{stem}{seq:05}");
        prop_assert_eq!(
            prefetch::sequence_of(&path),
            Some(("/a/b", stem.as_str(), seq))
        );
    }
}

// ------------------------------------------------------------ writeback

#[test]
fn deferred_writes_respect_reads_even_through_midnight_chains() {
    // Write at 21:00, read back at 23:30 (inside the night window):
    // the flush must still land before the read.
    let records = vec![
        write("/model/out", 21 * HOUR),
        read("/model/out", 23 * HOUR + 1800),
    ];
    let deferred = writeback::defer_writes(&records);
    let w = deferred
        .iter()
        .find(|r| r.direction() == Direction::Write)
        .unwrap();
    let r = deferred
        .iter()
        .find(|r| r.direction() == Direction::Read)
        .unwrap();
    assert!(w.start < r.start);
    let report = writeback::deferral_report(&records, &deferred);
    assert_eq!(report.writes, 1);
}

proptest! {
    /// Write-behind invariants on arbitrary traces: the deferred trace
    /// is a same-length, time-sorted permutation in which reads and
    /// errors are untouched, no write moved backwards (rank-wise), and
    /// every successful write still lands before the next read of its
    /// path.
    #[test]
    fn defer_writes_preserves_reads_and_read_back_ordering(
        steps in proptest::collection::vec((0u8..6, 0u8..10, any::<bool>()), 0..100),
    ) {
        let records = random_trace(&steps);
        let deferred = writeback::defer_writes(&records);
        prop_assert_eq!(deferred.len(), records.len());
        for pair in deferred.windows(2) {
            prop_assert!(pair[0].start <= pair[1].start);
        }
        // Reads and errors pass through as a multiset.
        let untouched = |rs: &[TraceRecord]| {
            let mut v: Vec<(i64, String)> = rs
                .iter()
                .filter(|r| !r.is_ok() || r.direction() == Direction::Read)
                .map(|r| (r.start.as_unix(), r.mss_path.clone()))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(untouched(&records), untouched(&deferred));
        // Rank-wise, no write moves earlier.
        let write_times = |rs: &[TraceRecord]| {
            let mut v: Vec<i64> = rs
                .iter()
                .filter(|r| r.is_ok() && r.direction() == Direction::Write)
                .map(|r| r.start.as_unix())
                .collect();
            v.sort_unstable();
            v
        };
        for (before, after) in write_times(&records).iter().zip(write_times(&deferred)) {
            prop_assert!(after >= *before);
        }
        // Read-back safety: in the deferred trace, every successful
        // read of a path that was written earlier in the *original*
        // trace still sees the write flushed no later than the read
        // (equality only when write and read shared a timestamp to
        // begin with — the clamp is `next_read - 1`, floored at the
        // write's own start).
        for (i, rec) in records.iter().enumerate() {
            if !rec.is_ok() || rec.direction() != Direction::Write {
                continue;
            }
            let next_read = records[i + 1..]
                .iter()
                .find(|r| r.is_ok() && r.direction() == Direction::Read && r.mss_path == rec.mss_path);
            if let Some(read_rec) = next_read {
                let flushed = deferred
                    .iter()
                    .filter(|r| {
                        r.is_ok()
                            && r.direction() == Direction::Write
                            && r.mss_path == rec.mss_path
                            && r.start <= read_rec.start
                    })
                    .count();
                prop_assert!(
                    flushed > 0,
                    "write of {} lost before its read-back", rec.mss_path
                );
            }
        }
    }
}

// ------------------------------------------------------------- dividing

#[test]
fn dividing_point_feasibility_is_monotone_in_the_threshold() {
    let study = dividing::DividingPointStudy {
        disk_budget: 50_000_000,
        ..dividing::DividingPointStudy::ncar()
    };
    let static_sizes: Vec<u64> = (1..=40).map(|i| i * 2_000_000).collect();
    let thresholds: Vec<u64> = (0..=10).map(|i| i * 10_000_000).collect();
    let rows = study.sweep(&static_sizes, &static_sizes, &thresholds);
    // Once infeasible, larger thresholds stay infeasible.
    let mut seen_infeasible = false;
    for row in &rows {
        if seen_infeasible {
            assert!(!row.feasible, "feasibility must be monotone");
        }
        seen_infeasible |= !row.feasible;
    }
    assert!(seen_infeasible, "the budget must bind somewhere");
    let best = study
        .best_feasible(&static_sizes, &static_sizes, &thresholds)
        .expect("a feasible row exists");
    assert!(best.feasible);
}

proptest! {
    /// Dividing-point invariants: resident bytes and disk share grow
    /// with the threshold, response time never worsens as more accesses
    /// move to the (strictly faster) disk tier, and `best_feasible`
    /// returns the minimum-response feasible row.
    #[test]
    fn dividing_sweep_is_monotone_and_best_feasible_is_minimal(
        sizes in proptest::collection::vec(1u64..50_000_000, 1..60),
        budget in 1_000_000u64..2_000_000_000,
    ) {
        let study = dividing::DividingPointStudy {
            disk_budget: budget,
            ..dividing::DividingPointStudy::ncar()
        };
        let mut thresholds: Vec<u64> = vec![0, 1_000, 1_000_000, 10_000_000, 100_000_000];
        thresholds.extend(sizes.iter().take(8).copied());
        thresholds.sort_unstable();
        let rows = study.sweep(&sizes, &sizes, &thresholds);
        for pair in rows.windows(2) {
            prop_assert!(pair[1].disk_resident_bytes >= pair[0].disk_resident_bytes);
            prop_assert!(pair[1].disk_access_share >= pair[0].disk_access_share);
            prop_assert!(pair[1].mean_response_s <= pair[0].mean_response_s + 1e-9);
            if !pair[0].feasible {
                prop_assert!(!pair[1].feasible);
            }
        }
        if let Some(best) = study.best_feasible(&sizes, &sizes, &thresholds) {
            prop_assert!(best.feasible);
            for row in rows.iter().filter(|r| r.feasible) {
                prop_assert!(best.mean_response_s <= row.mean_response_s + 1e-9);
            }
        } else {
            // Only possible when even threshold 0 breaks the budget —
            // which it cannot, since nothing is resident below it.
            prop_assert!(rows.iter().all(|r| !r.feasible));
        }
    }
}
