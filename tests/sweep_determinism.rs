//! Workspace-level guarantees of the sweep engine and the streaming hot
//! path:
//!
//! * a sweep is a pure function of its matrix — `workers = 1` and
//!   `workers = N` produce byte-identical JSON reports;
//! * every streaming variant (owning workload stream, simulator sink,
//!   incremental policy prep) is observationally equal to its
//!   materializing counterpart.

use fmig::{run_sweep, FaultScenarioId, PolicyId, PresetId, SweepConfig};
use fmig_migrate::eval::{evaluate_policies, EvalConfig, TracePrep};
use fmig_migrate::policy::standard_suite;
use fmig_sim::{MssSimulator, SimConfig};
use fmig_trace::TraceRecord;
use fmig_workload::{Workload, WorkloadConfig};

fn sweep_matrix() -> SweepConfig {
    SweepConfig {
        policies: vec![PolicyId::Stp14, PolicyId::Lru, PolicyId::Belady],
        presets: vec![PresetId::Ncar, PresetId::ReadHot],
        scales: vec![0.002],
        cache_fractions: vec![0.01, 0.05],
        base_seed: 0xDE7E_2217,
        simulate_devices: true,
        latency: false,
        faults: vec![FaultScenarioId::None],
        workers: 1,
        trace_store: None,
    }
}

#[test]
fn sweep_report_is_byte_identical_across_worker_counts() {
    let serial = sweep_matrix();
    let mut pooled = serial.clone();
    pooled.workers = 4;
    let a = run_sweep(&serial).to_json();
    let b = run_sweep(&pooled).to_json();
    assert_eq!(a, b, "worker count leaked into the report");
    // And the report is non-trivial: every shard carries its cells.
    assert!(a.contains("\"shards\""));
    assert!(a.contains("\"winners\""));
    assert!(a.contains("stp1.4"));
}

#[test]
fn latency_sweep_report_is_byte_identical_across_worker_counts() {
    let mut serial = sweep_matrix();
    serial.latency = true;
    let mut pooled = serial.clone();
    pooled.workers = 8;
    let a = run_sweep(&serial).to_json();
    let b = run_sweep(&pooled).to_json();
    assert_eq!(a, b, "worker count leaked into the latency report");
    // The closed-loop cells actually measured something.
    assert!(a.contains("\"latency_mode\": true"));
    assert!(a.contains("\"mean_read_wait_s\""));
    assert!(a.contains("\"by_p99_wait\": \""));
    assert!(!a.contains("\"latency\": null"));
}

#[test]
fn latency_aware_cells_are_byte_identical_across_worker_counts() {
    // The latency-aware policies fold the engine's recall-wait EWMAs
    // into their victim scores, so this pins the whole feedback loop —
    // measurement, publication, and eviction — as a pure function of
    // the matrix, independent of worker scheduling.
    let serial = SweepConfig {
        policies: vec![PolicyId::Lru, PolicyId::LruMad, PolicyId::StpLat],
        presets: vec![PresetId::Ncar, PresetId::ReadHot],
        scales: vec![0.002],
        cache_fractions: vec![0.01],
        base_seed: 0xDE7E_2217,
        simulate_devices: true,
        latency: true,
        faults: vec![FaultScenarioId::None, FaultScenarioId::DegradedPeak],
        workers: 1,
        trace_store: None,
    };
    let mut pooled = serial.clone();
    pooled.workers = 8;
    let a = run_sweep(&serial).to_json();
    let b = run_sweep(&pooled).to_json();
    assert_eq!(a, b, "worker count leaked into latency-aware cells");
    assert!(a.contains("\"lru-mad\""));
    assert!(a.contains("\"stp-lat\""));
    assert!(a.contains("\"by_p99_wait\": \""));
}

#[test]
fn closed_loop_cells_reproduce_open_loop_miss_ratios() {
    // Holds because sweep_matrix() is all latency-blind policies; the
    // latency-aware ones evict against live feedback and are exempt
    // from this identity by contract (see docs/policy-contract.md).
    let open = sweep_matrix();
    let mut closed = open.clone();
    closed.latency = true;
    let a = run_sweep(&open);
    let b = run_sweep(&closed);
    for (sa, sb) in a.shards.iter().zip(&b.shards) {
        for (ca, cb) in sa.cells.iter().zip(&sb.cells) {
            assert_eq!(ca.policy, cb.policy);
            assert_eq!(
                ca.miss_ratio,
                cb.miss_ratio,
                "{} diverged on {}/{}",
                ca.policy.name(),
                sa.preset.name(),
                sa.scale
            );
            assert_eq!(ca.byte_miss_ratio, cb.byte_miss_ratio);
            let lat = cb.latency.expect("closed-loop cell");
            assert!(lat.mean_read_wait_s > 0.0);
            assert!(lat.p99_read_wait_s >= lat.mean_read_wait_s);
        }
    }
}

#[test]
fn sweep_shards_do_not_share_rng_streams() {
    let report = run_sweep(&sweep_matrix());
    assert_eq!(report.shards.len(), 2);
    let [a, b] = &report.shards[..] else {
        unreachable!()
    };
    assert_ne!(a.workload_seed, b.workload_seed);
    assert_ne!(a.sim_seed, b.sim_seed);
    assert_ne!(a.workload_seed, a.sim_seed);
    // Distinct streams generate distinct traces.
    assert_ne!((a.records, a.files), (b.records, b.files));
}

#[test]
fn workload_streaming_matches_materialized_records() {
    let config = WorkloadConfig {
        scale: 0.002,
        seed: 23,
        ..WorkloadConfig::default()
    };
    let workload = Workload::generate(&config);
    let materialized: Vec<TraceRecord> = workload.records().collect();
    let streamed: Vec<TraceRecord> = Workload::generate(&config).into_records().collect();
    assert_eq!(materialized, streamed);
}

#[test]
fn simulator_streaming_matches_batch_run() {
    let workload = Workload::generate(&WorkloadConfig {
        scale: 0.002,
        seed: 31,
        ..WorkloadConfig::default()
    });
    let sim = MssSimulator::new(SimConfig::default().with_seed(77));
    let batch = sim.run(workload.records());
    let mut streamed = Vec::new();
    let metrics = sim.run_streaming(workload.records(), |rec| streamed.push(rec));
    assert_eq!(batch.records, streamed);
    assert_eq!(batch.metrics, metrics);
    assert!(metrics.requests > 0);
}

#[test]
fn policy_prep_streaming_matches_batch_evaluation() {
    let workload = Workload::generate(&WorkloadConfig {
        scale: 0.002,
        seed: 41,
        ..WorkloadConfig::default()
    });
    let records: Vec<TraceRecord> = workload.records().collect();
    let total: u64 = workload.files().iter().map(|f| f.size).sum();
    let config = EvalConfig::with_capacity((total as f64 * 0.015) as u64);
    let suite = standard_suite();

    let batch = evaluate_policies(&records, &suite, &config);
    // Stream the records one at a time, as a sweep cell's sink does.
    let mut prep = TracePrep::new();
    for rec in workload.records() {
        prep.observe(&rec);
    }
    let streamed = prep.finish().evaluate(&suite, &config);
    assert_eq!(batch, streamed);
}

#[test]
fn distinct_sim_seeds_give_distinct_latency_noise() {
    // The satellite fix: two cells must be able to thread distinct seeds
    // through SimConfig instead of silently sharing one stream.
    let workload = Workload::generate(&WorkloadConfig {
        scale: 0.002,
        seed: 53,
        ..WorkloadConfig::default()
    });
    let base = SimConfig::default();
    let a = MssSimulator::new(base.clone().with_seed(1)).run(workload.records());
    let b = MssSimulator::new(base.clone().with_seed(2)).run(workload.records());
    let same = MssSimulator::new(base.with_seed(1)).run(workload.records());
    let lat = |run: &fmig_sim::SimRun| -> Vec<u32> {
        run.records.iter().map(|r| r.startup_latency_s).collect()
    };
    assert_eq!(lat(&a), lat(&same), "equal seeds must replay identically");
    assert_ne!(lat(&a), lat(&b), "distinct seeds must decorrelate");
}
