//! Workspace-level guarantees of the fault-injection subsystem:
//!
//! * fault-enabled sweeps are **deterministic** — byte-identical JSON
//!   across worker counts and across repeated runs of one seed;
//! * the zero-fault axis is **bit-identical** to the pre-fault engine
//!   (the golden fixture in `tests/golden_report.rs` pins the bytes;
//!   here we pin the cell-by-cell equivalence against a fresh run);
//! * faults move *time*, never *decisions*: every fault cell's miss
//!   ratios equal its healthy twin's, exactly;
//! * the degraded measurements feed `fmig_analysis::AvailabilityReport`
//!   end to end.

use fmig::{run_sweep, FaultScenarioId, PolicyId, PresetId, SweepConfig};
use fmig_analysis::{AvailabilityReport, AvailabilityRow};
use proptest::prelude::*;

fn fault_matrix() -> SweepConfig {
    SweepConfig {
        policies: vec![PolicyId::Stp14, PolicyId::Lru],
        presets: vec![PresetId::Ncar, PresetId::WriteHeavy],
        scales: vec![0.002],
        cache_fractions: vec![0.01],
        base_seed: 0xFA_017,
        simulate_devices: false,
        latency: false,
        faults: vec![
            FaultScenarioId::None,
            FaultScenarioId::FlakyReads,
            FaultScenarioId::DegradedPeak,
        ],
        workers: 1,
        trace_store: None,
    }
}

#[test]
fn fault_sweep_is_byte_identical_across_worker_counts() {
    let serial = fault_matrix();
    let mut pooled = serial.clone();
    pooled.workers = 8;
    let a = run_sweep(&serial).to_json();
    let b = run_sweep(&pooled).to_json();
    assert_eq!(a, b, "worker count leaked into the fault report");
    assert!(a.contains("\"fault_scenarios\": [\"none\", \"flaky-reads\", \"degraded-peak\"]"));
    assert!(a.contains("\"degraded\": {\"read_retries\":"));
    assert!(a.contains("\"by_degraded_p99\": \""));
}

#[test]
fn fault_sweep_replays_identically_for_one_seed_and_moves_for_another() {
    let config = fault_matrix();
    let a = run_sweep(&config).to_json();
    let b = run_sweep(&config).to_json();
    assert_eq!(a, b, "same seed must produce byte-identical reports");
    let mut reseeded = config.clone();
    reseeded.base_seed ^= 0xDEAD_BEEF;
    let c = run_sweep(&reseeded).to_json();
    assert_ne!(a, c, "distinct seeds must decorrelate the faults");
}

#[test]
fn fault_cells_preserve_healthy_miss_ratios_cell_by_cell() {
    let report = run_sweep(&fault_matrix());
    for shard in &report.shards {
        let healthy: Vec<_> = shard
            .cells
            .iter()
            .filter(|c| c.fault == FaultScenarioId::None)
            .collect();
        assert!(!healthy.is_empty());
        let mut fault_cells = 0;
        for cell in shard
            .cells
            .iter()
            .filter(|c| c.fault != FaultScenarioId::None)
        {
            fault_cells += 1;
            let twin = healthy
                .iter()
                .find(|h| h.policy == cell.policy && h.cache_fraction == cell.cache_fraction)
                .expect("healthy twin");
            assert_eq!(twin.miss_ratio, cell.miss_ratio, "{}", cell.policy.name());
            assert_eq!(twin.byte_miss_ratio, cell.byte_miss_ratio);
            // The degraded world is measurably worse than a healthy
            // closed-loop run would be, not just differently seeded:
            // person-minutes derive from the measured (longer) waits.
            let lat = cell.latency.expect("fault cells are closed-loop");
            assert!(lat.mean_miss_wait_s > 0.0);
            assert!(lat.degraded.is_some(), "fault cells carry attribution");
        }
        assert!(fault_cells > 0, "matrix must expand the fault axis");
    }
}

#[test]
fn zero_fault_axis_equals_an_axis_free_run_cell_by_cell() {
    // The [None] axis must not merely be byte-similar: every cell of a
    // run with the fault axis pinned to [None] equals the corresponding
    // cell of the same matrix run with an empty axis (the fallback),
    // in both open-loop and latency mode.
    for latency in [false, true] {
        let mut pinned = fault_matrix();
        pinned.latency = latency;
        pinned.faults = vec![FaultScenarioId::None];
        let mut empty = pinned.clone();
        empty.faults = vec![];
        let a = run_sweep(&pinned);
        let b = run_sweep(&empty);
        assert_eq!(a.to_json(), b.to_json());
        for (sa, sb) in a.shards.iter().zip(&b.shards) {
            assert_eq!(sa.cells, sb.cells);
        }
    }
}

#[test]
fn degraded_measurements_feed_the_availability_report() {
    let mut config = fault_matrix();
    config.presets = vec![PresetId::Ncar];
    config.latency = true; // healthy cells measure too → baselines exist
    let report = run_sweep(&config);
    let mut availability = AvailabilityReport::new();
    for cell in &report.shards[0].cells {
        let lat = cell.latency.expect("latency mode measures every cell");
        let d = lat.degraded.unwrap_or_default();
        availability.push(AvailabilityRow {
            policy: cell.policy.name().to_string(),
            scenario: cell.fault.name().to_string(),
            recalls: lat.recalls,
            read_retries: d.read_retries,
            outage_events: d.outage_events,
            outage_wait_s: d.outage_wait_s,
            mean_read_wait_s: lat.mean_read_wait_s,
            p99_read_wait_s: lat.p99_read_wait_s,
        });
    }
    assert_eq!(availability.len(), report.shards[0].cells.len());
    // Baselines resolve and the degraded tail is no better than the
    // healthy one for at least one scenario row.
    let text = availability.render();
    assert!(text.contains("degraded-peak"));
    assert!(text.contains("retry rate"));
    assert!(availability
        .most_robust(FaultScenarioId::DegradedPeak.name())
        .is_some());
    // The winner's by_degraded_p99 column must agree with the same
    // worst-case-across-scenarios ranking computed independently from
    // the availability rows (first-seen order breaks ties, matching the
    // matrix policy order the winner uses).
    let mut expected: Option<(String, f64)> = None;
    let mut seen: Vec<&str> = Vec::new();
    for row in availability.rows().iter().filter(|r| r.scenario != "none") {
        if seen.contains(&row.policy.as_str()) {
            continue;
        }
        seen.push(&row.policy);
        let worst = availability
            .rows()
            .iter()
            .filter(|r2| r2.policy == row.policy && r2.scenario != "none")
            .map(|r2| r2.p99_read_wait_s)
            .fold(f64::NEG_INFINITY, f64::max);
        match &expected {
            Some((_, best)) if *best <= worst => {}
            _ => expected = Some((row.policy.clone(), worst)),
        }
    }
    let expected = expected.expect("fault rows exist").0;
    let winner = report.winners[0]
        .by_degraded_p99
        .expect("fault matrix fills the robustness column");
    assert_eq!(winner.name(), expected, "winner column diverged from rows");
}

#[test]
fn retry_counters_pin_the_failed_retried_completed_recall_path() {
    use fmig_migrate::cache::{CacheConfig, DiskCache, ReadResult};
    use fmig_migrate::policy::Lru;

    // Cache level: a recall that fails twice before completing bumps
    // the retry counter on every failure — and ONLY that counter. The
    // CacheStats block stays byte-identical to the healthy twin where
    // the same recall completes first try, which is the invariant the
    // fault sweeps above pin at matrix level (faults move time, never
    // decisions) and the live daemon relies on when it reports retries
    // next to oracle-exact miss ratios.
    let lru = Lru;
    let mut degraded = DiskCache::new(CacheConfig::with_capacity(1 << 30), &lru);
    let mut healthy = DiskCache::new(CacheConfig::with_capacity(1 << 30), &lru);
    for (cache, failures) in [(&mut healthy, 0), (&mut degraded, 2)] {
        assert_eq!(
            cache.read_with(7, 1 << 20, 100, None, &mut |_| {}),
            ReadResult::Miss
        );
        for _ in 0..failures {
            assert!(cache.fetch_failed(7), "failure re-arms the fetch");
        }
        assert!(cache.fetch_complete(7));
        assert_eq!(
            cache.read_with(7, 1 << 20, 200, None, &mut |_| {}),
            ReadResult::Hit
        );
    }
    assert_eq!(degraded.fetch_retries(), 2);
    assert_eq!(healthy.fetch_retries(), 0);
    assert_eq!(
        healthy.stats(),
        degraded.stats(),
        "retries must never leak into CacheStats"
    );

    // Engine level: the closed-loop simulator's degraded attribution
    // and the cache-level counter are the same number — the engine
    // fails a fetch exactly when a tape read errors — so a live run
    // surfacing `fetch_retries` feeds AvailabilityReport rows that
    // agree with simulated `DegradedOutcome::read_retries`.
    let mut config = fault_matrix();
    config.presets = vec![PresetId::Ncar];
    config.faults = vec![FaultScenarioId::FlakyReads];
    config.latency = true;
    let report = run_sweep(&config);
    let mut saw_retries = false;
    for cell in &report.shards[0].cells {
        let lat = cell.latency.expect("latency mode measures every cell");
        let d = lat.degraded.expect("flaky cells carry attribution");
        saw_retries |= d.read_retries > 0;
    }
    assert!(saw_retries, "flaky-reads matrix must exercise retries");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// Satellite acceptance: same seed ⇒ byte-identical fault report;
    /// the healthy cells inside a fault-enabled sweep equal the cells
    /// of a fault-free sweep of the same matrix, cell by cell.
    #[test]
    fn fault_reports_are_pure_functions_of_the_seed(seed in 0u64..200) {
        let mut config = fault_matrix();
        config.presets = vec![PresetId::Ncar];
        config.faults = vec![FaultScenarioId::None, FaultScenarioId::DriveCrunch];
        config.base_seed = seed;
        let a = run_sweep(&config);
        let b = run_sweep(&config);
        prop_assert_eq!(a.to_json(), b.to_json());
        // The healthy half of the axis is untouched by the fault half.
        let mut healthy_only = config.clone();
        healthy_only.faults = vec![FaultScenarioId::None];
        let c = run_sweep(&healthy_only);
        let healthy_cells: Vec<_> = a.shards[0]
            .cells
            .iter()
            .filter(|cell| cell.fault == FaultScenarioId::None)
            .cloned()
            .collect();
        prop_assert_eq!(healthy_cells, c.shards[0].cells.clone());
    }
}
