//! Exactness properties of the replay hot path's two new engines:
//!
//! * the single-pass miss-ratio-curve engine (`fmig_migrate::mrc`) must
//!   reproduce per-capacity naive replay **bit-identically** — same
//!   counters, hence same miss ratios and byte miss ratios — for every
//!   shipped policy and any capacity grid;
//! * the incremental eviction index must produce the **identical victim
//!   sequence** to the sort-based rescan oracle: same `CacheOp` stream,
//!   same counters, same survivors.
//!
//! Traces are random but well-formed: times never decrease and
//! `next_use` comes from a real reverse sweep, the invariants every
//! replay in this workspace provides (and the affine forms assume).

use std::collections::HashMap;

use proptest::prelude::*;

use fmig_migrate::cache::{CacheConfig, CacheOp, DiskCache, EvictionMode};
use fmig_migrate::eval::{EvalConfig, PreparedRef};
use fmig_migrate::mrc::{sweep_capacities, sweep_capacities_naive};
use fmig_migrate::policy::{standard_suite, Belady, MigrationPolicy};
use fmig_trace::{DeviceClass, FileId};

/// One raw reference: (write?, file id, size, time step).
type Spec = (bool, u64, u64, i64);

fn arb_specs() -> impl Strategy<Value = Vec<Spec>> {
    proptest::collection::vec(
        (
            any::<bool>(),
            0u64..40,
            1u64..600_000,
            0i64..400, // occasional zero steps: equal-timestamp ties
        ),
        20..220,
    )
}

/// Turns raw specs into a prepared reference stream: monotone times and
/// an oracle-consistent `next_use` reverse sweep (what `TracePrep`
/// would have produced).
fn build_refs(specs: &[Spec]) -> Vec<PreparedRef> {
    let mut t = 0i64;
    let mut refs: Vec<PreparedRef> = specs
        .iter()
        .map(|&(write, id, size, dt)| {
            t += dt;
            PreparedRef {
                id: id.into(),
                size,
                write,
                time: t,
                next_use: None,
                device: DeviceClass::Disk,
            }
        })
        .collect();
    let mut next_seen: HashMap<FileId, i64> = HashMap::new();
    for r in refs.iter_mut().rev() {
        r.next_use = next_seen.get(&r.id).copied();
        next_seen.insert(r.id, r.time);
    }
    refs
}

/// Every shipped policy, clairvoyant bound included.
fn all_policies() -> Vec<Box<dyn MigrationPolicy>> {
    let mut policies = standard_suite();
    policies.push(Box::new(Belady));
    policies
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The fused single-pass curve equals one naive full replay per
    /// capacity, exactly, for every shipped policy on a random grid.
    #[test]
    fn mrc_single_pass_equals_per_capacity_replay(
        specs in arb_specs(),
        grid in proptest::collection::vec(1u64..100, 2..6),
    ) {
        let refs = build_refs(&specs);
        let total: u64 = refs.iter().map(|r| r.size).sum();
        // Grid points span "almost nothing fits" to "everything fits".
        let capacities: Vec<u64> = grid
            .iter()
            .map(|&pct| (total * pct / 100).max(1))
            .collect();
        let base = EvalConfig::with_capacity(0);
        for policy in all_policies() {
            let fused = sweep_capacities(&refs, policy.as_ref(), &capacities, &base);
            let naive = sweep_capacities_naive(&refs, policy.as_ref(), &capacities, &base);
            prop_assert!(fused == naive, "{} diverged", policy.name());
            for point in &fused.points {
                prop_assert!((0.0..=1.0).contains(&point.miss_ratio()));
                prop_assert!((0.0..=1.0).contains(&point.byte_miss_ratio()));
            }
        }
    }

    /// The incremental eviction index replays the identical victim
    /// sequence to the sort-based rescan oracle: the full `CacheOp`
    /// stream (which spells out every victim, in order, with its stall
    /// classification), the counters, and the survivor set all match.
    #[test]
    fn eviction_index_matches_sort_oracle_victim_sequence(
        specs in arb_specs(),
        capacity_pct in 2u64..40,
    ) {
        let refs = build_refs(&specs);
        let total: u64 = refs.iter().map(|r| r.size).sum();
        let config = CacheConfig {
            capacity: (total * capacity_pct / 100).max(1),
            high_watermark: 0.9,
            low_watermark: 0.6,
            eager_writeback: false, // dirty evictions: ops carry stalls
        };
        for policy in all_policies() {
            let mut indexed =
                DiskCache::with_eviction_mode(config, policy.as_ref(), EvictionMode::Indexed);
            let mut rescan =
                DiskCache::with_eviction_mode(config, policy.as_ref(), EvictionMode::Rescan);
            let mut indexed_ops: Vec<CacheOp> = Vec::new();
            let mut rescan_ops: Vec<CacheOp> = Vec::new();
            for r in &refs {
                if r.write {
                    indexed.write_with(r.id, r.size, r.time, r.next_use, &mut |op| {
                        indexed_ops.push(op)
                    });
                    rescan.write_with(r.id, r.size, r.time, r.next_use, &mut |op| {
                        rescan_ops.push(op)
                    });
                } else {
                    let a = indexed.read_with(r.id, r.size, r.time, r.next_use, &mut |op| {
                        indexed_ops.push(op)
                    });
                    let b = rescan.read_with(r.id, r.size, r.time, r.next_use, &mut |op| {
                        rescan_ops.push(op)
                    });
                    prop_assert!(a == b, "{}: read result diverged", policy.name());
                    indexed.fetch_complete(r.id);
                    rescan.fetch_complete(r.id);
                }
            }
            prop_assert!(
                indexed_ops == rescan_ops,
                "{}: victim sequences diverged",
                policy.name()
            );
            prop_assert_eq!(indexed.stats(), rescan.stats());
            for r in &refs {
                prop_assert_eq!(indexed.contains(r.id), rescan.contains(r.id));
            }
        }
    }
}
