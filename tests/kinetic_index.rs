//! Exactness properties of the kinetic victim-ranking path: for every
//! time-varying shipped policy, replaying through the kinetic
//! tournament must be **observationally identical** to the sort-based
//! rescan oracle —
//!
//! * the full `CacheOp` stream (every victim, in order, with its stall
//!   classification), the counters, and the survivor set of a
//!   [`DiskCache`] replay;
//! * the single-pass miss-ratio-curve engine against one naive full
//!   replay per capacity, at resident counts large enough to clear the
//!   `INDEX_MIN_RESIDENTS` activation gate so the MRC stacks actually
//!   rank through their tournaments.
//!
//! Traces are adversarial for certificates: sizes span orders of
//! magnitude and timestamps mix zero steps (exact ties), short hops
//! (crossing-heavy STP windows) and half-day jumps (RandomEvict's
//! piecewise-constant epochs flip mid-trace). Latency-aware policies
//! get a nonzero recall-wait hint so their priority actually uses it.

use std::collections::HashMap;

use proptest::prelude::*;

use fmig_migrate::cache::{CacheConfig, CacheOp, DiskCache, EvictionMode};
use fmig_migrate::eval::{EvalConfig, PreparedRef};
use fmig_migrate::mrc::{sweep_capacities, sweep_capacities_naive};
use fmig_migrate::policy::{LruMad, MigrationPolicy, RandomEvict, Saac, Stp, StpLat};
use fmig_trace::{DeviceClass, FileId};

/// One raw reference: (write?, file id, size, time step).
type Spec = (bool, u64, u64, i64);

/// Every shipped policy whose priority drifts with the clock — exactly
/// the set that ranks through the kinetic tournament (one entry per
/// [`fmig_migrate::policy::KineticForm`] variant, plus the exponent
/// spread that stresses the shared-exponent crossing solver).
fn kinetic_suite() -> Vec<Box<dyn MigrationPolicy>> {
    vec![
        Box::new(Stp { exponent: 1.0 }),
        Box::new(Stp::classic()),
        Box::new(Stp { exponent: 2.0 }),
        Box::new(Saac),
        Box::new(RandomEvict { salt: 0xD1CE }),
        Box::new(LruMad::classic()),
        Box::new(StpLat::classic()),
    ]
}

/// Turns raw specs into a prepared reference stream: monotone times
/// (with a half-day hop every `day_stride` refs so piecewise-constant
/// epochs roll over mid-trace) and an oracle-consistent `next_use`
/// reverse sweep.
fn build_refs(specs: &[Spec], day_stride: usize) -> Vec<PreparedRef> {
    let mut t = 0i64;
    let mut refs: Vec<PreparedRef> = specs
        .iter()
        .enumerate()
        .map(|(i, &(write, id, size, dt))| {
            t += dt;
            if i % day_stride == day_stride - 1 {
                t += 43_200;
            }
            PreparedRef {
                id: id.into(),
                size,
                write,
                time: t,
                next_use: None,
                device: DeviceClass::Disk,
            }
        })
        .collect();
    let mut next_seen: HashMap<FileId, i64> = HashMap::new();
    for r in refs.iter_mut().rev() {
        r.next_use = next_seen.get(&r.id).copied();
        next_seen.insert(r.id, r.time);
    }
    refs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The kinetic tournament replays the identical victim sequence to
    /// the sort-based rescan oracle for every time-varying policy: same
    /// `CacheOp` stream, same counters, same survivors — ties included,
    /// since zero time steps produce exact priority collisions resolved
    /// by ascending id on both sides.
    #[test]
    fn kinetic_index_matches_sort_oracle_victim_sequence(
        specs in proptest::collection::vec(
            (
                any::<bool>(),
                0u64..40,
                1u64..600_000,
                0i64..400, // zero steps: equal-timestamp ties
            ),
            20..220,
        ),
        capacity_pct in 2u64..40,
        day_stride in 5usize..40,
        est_ds in 0u32..300,
    ) {
        let refs = build_refs(&specs, day_stride);
        let total: u64 = refs.iter().map(|r| r.size).sum();
        let config = CacheConfig {
            capacity: (total * capacity_pct / 100).max(1),
            high_watermark: 0.9,
            low_watermark: 0.6,
            eager_writeback: false, // dirty evictions: ops carry stalls
        };
        let est = f64::from(est_ds) / 10.0;
        for policy in kinetic_suite() {
            let mut indexed =
                DiskCache::with_eviction_mode(config, policy.as_ref(), EvictionMode::Indexed);
            let mut rescan =
                DiskCache::with_eviction_mode(config, policy.as_ref(), EvictionMode::Rescan);
            indexed.set_est_miss_wait_s(est);
            rescan.set_est_miss_wait_s(est);
            let mut indexed_ops: Vec<CacheOp> = Vec::new();
            let mut rescan_ops: Vec<CacheOp> = Vec::new();
            for r in &refs {
                if r.write {
                    indexed.write_with(r.id, r.size, r.time, r.next_use, &mut |op| {
                        indexed_ops.push(op)
                    });
                    rescan.write_with(r.id, r.size, r.time, r.next_use, &mut |op| {
                        rescan_ops.push(op)
                    });
                } else {
                    let a = indexed.read_with(r.id, r.size, r.time, r.next_use, &mut |op| {
                        indexed_ops.push(op)
                    });
                    let b = rescan.read_with(r.id, r.size, r.time, r.next_use, &mut |op| {
                        rescan_ops.push(op)
                    });
                    prop_assert!(a == b, "{}: read result diverged", policy.name());
                    indexed.fetch_complete(r.id);
                    rescan.fetch_complete(r.id);
                }
            }
            prop_assert!(
                indexed_ops == rescan_ops,
                "{}: victim sequences diverged",
                policy.name()
            );
            prop_assert_eq!(indexed.stats(), rescan.stats());
            for r in &refs {
                prop_assert_eq!(indexed.contains(r.id), rescan.contains(r.id));
            }
        }
    }
}

proptest! {
    // Heavier cases (hundreds of residents so the MRC stacks clear the
    // `INDEX_MIN_RESIDENTS` gate and rank through their tournaments),
    // so fewer of them.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The fused single-pass miss-ratio curve equals one naive full
    /// replay per capacity for every kinetic policy, at scales where
    /// the per-stack kinetic tournaments actually activate.
    #[test]
    fn mrc_kinetic_stacks_equal_per_capacity_replay(
        specs in proptest::collection::vec(
            (
                any::<bool>(),
                0u64..400, // wide id space: hundreds of residents
                1u64..4_000,
                0i64..60,
            ),
            500..800,
        ),
        day_stride in 20usize..60,
    ) {
        let refs = build_refs(&specs, day_stride);
        let total: u64 = refs.iter().map(|r| r.size).sum();
        // The top capacity holds nearly every distinct file — far past
        // the 128-resident activation gate — while the low one churns.
        let capacities: Vec<u64> = [20u64, 60, 95]
            .iter()
            .map(|&pct| (total * pct / 100).max(1))
            .collect();
        let base = EvalConfig::with_capacity(0);
        for policy in kinetic_suite() {
            let fused = sweep_capacities(&refs, policy.as_ref(), &capacities, &base);
            let naive = sweep_capacities_naive(&refs, policy.as_ref(), &capacities, &base);
            prop_assert!(fused == naive, "{} diverged", policy.name());
        }
    }
}

/// Engagement guard at the public-API level: a purge-heavy STP replay
/// under `Indexed` mode must actually be ranking through the kinetic
/// tournament (not silently degraded to the rescan), and the victim
/// stream must still match the oracle.
#[test]
fn stp_replay_engages_the_kinetic_tournament() {
    let config = CacheConfig {
        capacity: 1 << 20,
        high_watermark: 0.9,
        low_watermark: 0.7,
        eager_writeback: true,
    };
    let policy = Stp::classic();
    let mut indexed = DiskCache::with_eviction_mode(config, &policy, EvictionMode::Indexed);
    let mut rescan = DiskCache::with_eviction_mode(config, &policy, EvictionMode::Rescan);
    let mut a: Vec<CacheOp> = Vec::new();
    let mut b: Vec<CacheOp> = Vec::new();
    for i in 0..4_000u64 {
        let (id, size, now) = (i % 600, 1_000 + (i % 13) * 700, (i * 5) as i64);
        indexed.write_with(id, size, now, None, &mut |op| a.push(op));
        rescan.write_with(id, size, now, None, &mut |op| b.push(op));
    }
    assert!(indexed.uses_kinetic_index(), "STP must rank kinetically");
    assert!(!indexed.uses_eviction_index());
    assert_eq!(a, b);
    assert_eq!(indexed.stats(), rescan.stats());
}
