//! Work with the Table 2 trace format: write a trace to disk, stream it
//! back, and verify the analyses agree — the interchange path a site
//! would use to analyze its own MSS logs with this library.
//!
//! ```text
//! cargo run --release --example trace_roundtrip
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};

use fmig_analysis::Analyzer;
use fmig_trace::time::TRACE_EPOCH;
use fmig_trace::{TraceReader, TraceWriter, VerboseLogWriter};
use fmig_workload::{Workload, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::generate(&WorkloadConfig {
        scale: 0.005,
        seed: 42,
        ..WorkloadConfig::default()
    });
    println!("generated {} records", workload.len());

    // Write the compact machine-readable trace (delta times, same-user
    // elision, percent-escaped paths).
    let path = std::env::temp_dir().join("fmig-roundtrip.trace");
    let mut writer = TraceWriter::new(BufWriter::new(File::create(&path)?), TRACE_EPOCH)?;
    let verbose_bytes;
    {
        let mut verbose = VerboseLogWriter::new(std::io::sink());
        for rec in workload.records() {
            writer.write_record(&rec)?;
            verbose.write_record(&rec)?;
        }
        verbose_bytes = verbose.bytes_written();
    }
    let compact_bytes = writer.bytes_written();
    writer.finish()?;
    println!(
        "trace file: {} ({} bytes; the raw system log would be {} bytes — {:.1}x)",
        path.display(),
        compact_bytes,
        verbose_bytes,
        verbose_bytes as f64 / compact_bytes as f64,
    );

    // Stream it back and analyze.
    let reader = TraceReader::new(BufReader::new(File::open(&path)?))?;
    let mut from_disk = Analyzer::new();
    let mut read_back = 0usize;
    for item in reader {
        let rec = item?;
        from_disk.observe(&rec);
        read_back += 1;
    }
    println!("read back {read_back} records");

    // The round-tripped analysis must match the in-memory one.
    let in_memory = Analyzer::analyze_owned(workload.records());
    assert_eq!(in_memory.stats, from_disk.stats, "Table 3 stats diverged");
    assert_eq!(
        in_memory.files.file_count(),
        from_disk.files.file_count(),
        "file census diverged"
    );
    println!(
        "round-trip verified: {} files, read share {:.1}%, error rate {:.2}%",
        from_disk.files.file_count(),
        from_disk.stats.read_reference_share() * 100.0,
        from_disk.stats.error_fraction() * 100.0
    );

    std::fs::remove_file(&path)?;
    Ok(())
}
