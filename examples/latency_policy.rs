//! Compare migration policies by *simulated first-byte latency* instead
//! of miss ratio: the closed-loop hierarchy engine puts a policy-driven
//! disk cache in the device model's data path, so every miss pays a real
//! tape recall (drive queue, robot mount, seek, mover) and write-behind
//! flushes compete with those recalls for the same hardware.
//!
//! The paper's point (Figure 3, Table 3) is that policy choice is a
//! latency problem, not just a hit-rate problem — STP and LRU can sit
//! within a point of miss ratio yet feel very different at the p99.
//!
//! ```text
//! cargo run --release --example latency_policy
//! ```

use fmig::analysis::PolicyLatencyReport;
use fmig::migrate::eval::{EvalConfig, TracePrep};
use fmig::migrate::policy::{Lru, LruMad, MigrationPolicy, Stp, StpLat};
use fmig::sim::{HierarchySimulator, SimConfig};
use fmig::trace::Direction;
use fmig_workload::{Workload, WorkloadConfig};

fn main() {
    // An NCAR-calibrated trace, prepared once and shared by both
    // policies (they must be judged on the same request stream).
    let workload = Workload::generate(&WorkloadConfig {
        scale: 0.004,
        seed: 1993,
        ..WorkloadConfig::default()
    });
    let referenced: u64 = workload.files().iter().map(|f| f.size).sum();
    let mut prep = TracePrep::new();
    for rec in workload.records() {
        prep.observe(&rec);
    }
    let prepared = prep.finish();
    let eval = EvalConfig::with_capacity(((referenced as f64) * 0.015) as u64);
    println!(
        "closed-loop: {} references, staging disk {:.2} GB (1.5% of referenced bytes)\n",
        prepared.len(),
        eval.cache.capacity as f64 / 1e9
    );

    // The two latency-aware entrants join their blind twins: inside the
    // engine they see live recall-wait EWMAs (closed loop), so their
    // rows measure what the feedback channel actually buys.
    let lru_mad = LruMad::classic();
    let stp_lat = StpLat::classic();
    let policies: [&dyn MigrationPolicy; 4] = [&Stp::classic(), &Lru, &lru_mad, &stp_lat];
    let sim = HierarchySimulator::new(SimConfig::default());
    let mut report = PolicyLatencyReport::new();
    let mut p99 = Vec::new();
    for policy in policies {
        // One closed-loop pass per policy: the sink feeds this policy's
        // latency cell and the run's metrics carry everything else.
        let cell = report.cell(policy.name());
        let metrics = sim.run_streaming(eval.cache, policy, prepared.refs(), |o| {
            let dir = if o.write {
                Direction::Write
            } else {
                Direction::Read
            };
            cell.observe_wait(dir, o.device, o.wait_s);
        });
        let lat = metrics.latency_outcome();
        p99.push((policy.name(), lat.p99_read_wait_s));
        println!(
            "{:<9} miss ratio {:>5.2}%  mean read wait {:>6.1}s  p99 {:>6.1}s  \
             coalesced {:>4}  recalls {:>4}  flushed {:>6.1} MB (drive queue {:>5.1}s mean)",
            policy.name(),
            metrics.cache.miss_ratio() * 100.0,
            lat.mean_read_wait_s,
            lat.p99_read_wait_s,
            lat.delayed_hits,
            lat.recalls,
            lat.flush_bytes as f64 / 1e6,
            lat.mean_flush_queue_s,
        );
    }

    println!("\nper-policy latency cells:\n{}", report.render());
    let best = p99.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
    let worst = p99.iter().map(|&(_, v)| v).fold(0.0, f64::max);
    println!(
        "p99 first-byte spread across the suite: {:.1}s ({:.0}% of the slowest policy)",
        worst - best,
        if worst > 0.0 {
            (worst - best) / worst * 100.0
        } else {
            0.0
        }
    );
    if let Some((name, wait)) = report.best_by_p99() {
        println!("tail-latency winner: {name} at p99 {wait:.1}s");
    }
}
