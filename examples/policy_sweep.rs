//! Drive the parallel scenario-sweep engine: compare migration policies
//! across workload presets, scales, and staging-disk budgets in one
//! deterministic run.
//!
//! The matrix expands to policy × preset × scale × cache-size cells;
//! cells sharing a (preset, scale) coordinate share one generated trace
//! (policies must be judged on the same request stream) and each
//! coordinate gets its own derived RNG streams. The report is identical
//! at any worker count.
//!
//! ```text
//! cargo run --release --example policy_sweep
//! ```

use fmig::{run_sweep, FaultScenarioId, PolicyId, PresetId, SweepConfig};

fn main() {
    let config = SweepConfig {
        policies: vec![
            PolicyId::Stp14,
            PolicyId::Lru,
            PolicyId::Fifo,
            PolicyId::Saac,
            PolicyId::Belady,
        ],
        presets: vec![PresetId::Ncar, PresetId::ReadHot, PresetId::Archival],
        scales: vec![0.002],
        cache_fractions: vec![0.005, 0.015, 0.05],
        base_seed: 1993,
        simulate_devices: true,
        latency: false, // open-loop: miss ratios only, cheap
        faults: vec![FaultScenarioId::None],
        workers: 0,        // one per CPU
        trace_store: None, // generated workloads, not an imported trace
    };
    println!(
        "sweep: {} cells in {} shards (policy x preset x scale x cache)\n",
        config.cell_count(),
        config.shard_count()
    );

    let report = run_sweep(&config);
    print!("{}", report.render());

    // The §6 headline, now checkable across workload shapes: the
    // space-time-product family (Smith's STP, Lawrie's SAAC refinement
    // of it) should stay the best practical choice wherever re-reads
    // dominate, with Belady bounding everyone from below.
    let stp_family_wins = report
        .winners
        .iter()
        .filter(|w| matches!(w.practical, Some(PolicyId::Stp14 | PolicyId::Saac)))
        .count();
    println!(
        "\nthe STP family (STP 1.4 / SAAC) is the best practical policy in {}/{} groups",
        stp_family_wins,
        report.winners.len()
    );
}
