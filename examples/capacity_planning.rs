//! Capacity planning with the §6 studies: where should the disk/tape
//! dividing point sit, and how many requests would an integrated cache
//! absorb?
//!
//! This is the question an MSS operator would ask this library: "I have
//! N GB of staging disk and a tape library — what placement threshold
//! and what front-end cache do the reference patterns justify?"
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use fmig_migrate::dedup;
use fmig_migrate::dividing::{DeviceModel, DividingPointStudy};
use fmig_workload::{Workload, WorkloadConfig};

fn main() {
    let workload = Workload::generate(&WorkloadConfig {
        scale: 0.02,
        seed: 7,
        ..WorkloadConfig::default()
    });
    let records: Vec<_> = workload.records().collect();
    let static_sizes: Vec<u64> = workload.files().iter().map(|f| f.size).collect();
    let access_sizes: Vec<u64> = records
        .iter()
        .filter(|r| r.is_ok())
        .map(|r| r.file_size)
        .collect();
    let store_gb: f64 = static_sizes.iter().map(|&s| s as f64).sum::<f64>() / 1e9;
    println!(
        "store: {} files, {:.1} GB; {} requests",
        static_sizes.len(),
        store_gb,
        access_sizes.len()
    );

    // --- §6-c: the dividing point, for three tape technologies ---
    let thresholds: Vec<u64> = [1u64, 3, 10, 30, 100, 200]
        .iter()
        .map(|mb| mb * 1_000_000)
        .collect();
    // Scale NCAR's 100 GB staging disk with the workload.
    let budget = (100.0e9 * 0.02) as u64;
    for (label, overhead_s, rate) in [
        ("3480-class silo (60s to first byte)", 60.0, 2.2e6),
        ("faster robot (20s to first byte)", 20.0, 2.2e6),
        ("helical-scan (90s, 15 MB/s)", 90.0, 15.0e6),
    ] {
        let study = DividingPointStudy {
            disk: DeviceModel {
                overhead_s: 0.5,
                rate_bps: 2.4e6,
            },
            tape: DeviceModel {
                overhead_s,
                rate_bps: rate,
            },
            disk_budget: budget,
        };
        println!("\ntape = {label}:");
        println!(
            "  {:>10} {:>16} {:>12} {:>10}",
            "threshold", "mean response", "disk bytes", "feasible"
        );
        for row in study.sweep(&static_sizes, &access_sizes, &thresholds) {
            println!(
                "  {:>7} MB {:>14.1} s {:>9.2} GB {:>10}",
                row.threshold / 1_000_000,
                row.mean_response_s,
                row.disk_resident_bytes as f64 / 1e9,
                if row.feasible { "yes" } else { "no" }
            );
        }
        let best = study.best_feasible(&static_sizes, &access_sizes, &thresholds);
        match best {
            Some(b) => println!(
                "  -> best feasible threshold: {} MB (NCAR ran 30 MB); tape hides its\n\
                 \x20    mount beyond {:.0} MB transfers",
                b.threshold / 1_000_000,
                study.indifference_size() / 1e6
            ),
            None => println!("  -> no feasible threshold under this budget"),
        }
    }

    // --- §6-b: how much would an integrated Cray-MSS cache absorb? ---
    println!("\nrequest deduplication (an integrated cache would absorb):");
    let hour = 3600;
    for report in dedup::window_sweep(&records, &[hour, 4 * hour, 8 * hour, 24 * hour]) {
        println!(
            "  window {:>2} h: {:>6} duplicate requests = {:.1}% of traffic",
            report.window_s / hour,
            report.duplicates,
            report.savings() * 100.0
        );
    }
    println!(
        "\nThe paper: \"about one third of all requests came within eight hours\n\
         of another request for the same file\" — better Cray/MSS integration\n\
         eliminates them (§6)."
    );
}
