//! Capacity planning with the §6 studies: where should the disk/tape
//! dividing point sit, and how many requests would an integrated cache
//! absorb?
//!
//! This is the question an MSS operator would ask this library: "I have
//! N GB of staging disk and a tape library — what placement threshold
//! and what front-end cache do the reference patterns justify?"
//!
//! The first study is the paper's central artifact: the miss-ratio-vs-
//! capacity curve, drawn by the single-pass MRC engine
//! (`fmig_migrate::mrc`) and cross-checked — results *and* wall time —
//! against the naive one-replay-per-capacity sweep it replaced. The
//! example asserts the measured speedup, so it doubles as a smoke check
//! that the hot path stays fast.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use std::time::Instant;

use fmig_migrate::dedup;
use fmig_migrate::dividing::{DeviceModel, DividingPointStudy};
use fmig_migrate::eval::{prepare, EvalConfig};
use fmig_migrate::policy::Lru;
use fmig_workload::{Workload, WorkloadConfig};

fn main() {
    let workload = Workload::generate(&WorkloadConfig {
        scale: 0.02,
        seed: 7,
        ..WorkloadConfig::default()
    });
    let records: Vec<_> = workload.records().collect();
    let static_sizes: Vec<u64> = workload.files().iter().map(|f| f.size).collect();
    let access_sizes: Vec<u64> = records
        .iter()
        .filter(|r| r.is_ok())
        .map(|r| r.file_size)
        .collect();
    let store_gb: f64 = static_sizes.iter().map(|&s| s as f64).sum::<f64>() / 1e9;
    println!(
        "store: {} files, {:.1} GB; {} requests",
        static_sizes.len(),
        store_gb,
        access_sizes.len()
    );

    // --- §2.3: how much staging disk is a miss ratio worth? ---
    // One single-pass MRC walk answers for the whole capacity grid;
    // the naive sweep replays the trace once per grid point with the
    // sort-based purge rescan (the pre-index cost model).
    let prepared = prepare(records.iter());
    let store_bytes: u64 = static_sizes.iter().sum();
    let fractions = [0.005, 0.01, 0.02, 0.04, 0.06, 0.08];
    let capacities: Vec<u64> = fractions
        .iter()
        .map(|f| ((store_bytes as f64 * f) as u64).max(1))
        .collect();
    let base = EvalConfig::with_capacity(0);

    // Best-of-3 on both sides: a single ~10 ms measurement is inside
    // scheduler noise on a busy CI runner, and this example's speedup
    // assertion must not flake.
    let mut mrc_ms = f64::INFINITY;
    let mut naive_ms = f64::INFINITY;
    let mut curve = None;
    let mut naive = Vec::new();
    for _ in 0..3 {
        let started = Instant::now();
        curve = Some(prepared.miss_ratio_curve(&Lru, &capacities, &base));
        mrc_ms = mrc_ms.min(started.elapsed().as_secs_f64() * 1e3);
        let started = Instant::now();
        naive = prepared.capacity_sweep_naive(&Lru, &capacities, &base);
        naive_ms = naive_ms.min(started.elapsed().as_secs_f64() * 1e3);
    }
    let curve = curve.expect("three timing rounds ran");

    println!(
        "\nmiss ratio vs staging-disk capacity (LRU, {} refs):",
        prepared.len()
    );
    println!(
        "  {:>8} {:>12} {:>10} {:>12}",
        "cache", "capacity", "miss", "byte-miss"
    );
    for (point, &frac) in curve.points.iter().zip(&fractions) {
        println!(
            "  {:>7.1}% {:>9.2} GB {:>9.2}% {:>11.2}%",
            frac * 100.0,
            point.capacity as f64 / 1e9,
            point.miss_ratio() * 100.0,
            point.byte_miss_ratio() * 100.0
        );
    }
    assert_eq!(curve.miss_ratios(), naive, "MRC must equal naive replay");
    let speedup = naive_ms / mrc_ms;
    println!(
        "  single-pass MRC {mrc_ms:.0} ms vs naive per-capacity sweep {naive_ms:.0} ms \
         ({speedup:.1}x speedup)"
    );
    assert!(
        speedup >= 3.0,
        "single-pass MRC must be >= 3x faster than the naive sweep, got {speedup:.1}x"
    );

    // --- §6-c: the dividing point, for three tape technologies ---
    let thresholds: Vec<u64> = [1u64, 3, 10, 30, 100, 200]
        .iter()
        .map(|mb| mb * 1_000_000)
        .collect();
    // Scale NCAR's 100 GB staging disk with the workload.
    let budget = (100.0e9 * 0.02) as u64;
    for (label, overhead_s, rate) in [
        ("3480-class silo (60s to first byte)", 60.0, 2.2e6),
        ("faster robot (20s to first byte)", 20.0, 2.2e6),
        ("helical-scan (90s, 15 MB/s)", 90.0, 15.0e6),
    ] {
        let study = DividingPointStudy {
            disk: DeviceModel {
                overhead_s: 0.5,
                rate_bps: 2.4e6,
            },
            tape: DeviceModel {
                overhead_s,
                rate_bps: rate,
            },
            disk_budget: budget,
        };
        println!("\ntape = {label}:");
        println!(
            "  {:>10} {:>16} {:>12} {:>10}",
            "threshold", "mean response", "disk bytes", "feasible"
        );
        for row in study.sweep(&static_sizes, &access_sizes, &thresholds) {
            println!(
                "  {:>7} MB {:>14.1} s {:>9.2} GB {:>10}",
                row.threshold / 1_000_000,
                row.mean_response_s,
                row.disk_resident_bytes as f64 / 1e9,
                if row.feasible { "yes" } else { "no" }
            );
        }
        let best = study.best_feasible(&static_sizes, &access_sizes, &thresholds);
        match best {
            Some(b) => println!(
                "  -> best feasible threshold: {} MB (NCAR ran 30 MB); tape hides its\n\
                 \x20    mount beyond {:.0} MB transfers",
                b.threshold / 1_000_000,
                study.indifference_size() / 1e6
            ),
            None => println!("  -> no feasible threshold under this budget"),
        }
    }

    // --- §6-b: how much would an integrated Cray-MSS cache absorb? ---
    println!("\nrequest deduplication (an integrated cache would absorb):");
    let hour = 3600;
    for report in dedup::window_sweep(&records, &[hour, 4 * hour, 8 * hour, 24 * hour]) {
        println!(
            "  window {:>2} h: {:>6} duplicate requests = {:.1}% of traffic",
            report.window_s / hour,
            report.duplicates,
            report.savings() * 100.0
        );
    }
    println!(
        "\nThe paper: \"about one third of all requests came within eight hours\n\
         of another request for the same file\" — better Cray/MSS integration\n\
         eliminates them (§6)."
    );
}
