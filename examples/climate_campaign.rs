//! The paper's motivating workload: a climate-modelling campaign.
//!
//! §3.3 describes the pattern: a Community Climate Model run takes an
//! hour of Cray time and produces ~500 MB that must go to the MSS; the
//! scientist then steps through the output interactively the next
//! morning. This example builds that workload explicitly (without the
//! full synthetic NCAR trace), pushes it through the MSS simulator, and
//! shows why the paper argues for read-optimised migration.
//!
//! ```text
//! cargo run --release --example climate_campaign
//! ```

use fmig_migrate::writeback;
use fmig_sim::{MssSimulator, SimConfig};
use fmig_trace::time::{DAY, HOUR, TRACE_EPOCH};
use fmig_trace::{DeviceClass, Direction, Endpoint, TraceRecord};

/// One nightly model run: 60 history files of ~8 MB plus 4 restart files
/// of ~150 MB, written starting at 2 AM.
fn nightly_run(day: i64, run: usize) -> Vec<TraceRecord> {
    let mut records = Vec::new();
    let start = TRACE_EPOCH.add_secs(day * DAY + 2 * HOUR);
    let mut t = start;
    for hour_file in 0..60u64 {
        t = t.add_secs(45); // the job writes as it integrates
        records.push(TraceRecord::write(
            Endpoint::MssDisk,
            t,
            8_000_000,
            format!("/ccm/run{run:02}/hist{hour_file:03}"),
            100 + run as u32,
        ));
    }
    for restart in 0..4u64 {
        t = t.add_secs(140);
        records.push(TraceRecord::write(
            Endpoint::MssTapeSilo,
            t,
            150_000_000,
            format!("/ccm/run{run:02}/restart{restart}"),
            100 + run as u32,
        ));
    }
    records
}

/// The next morning the scientist pages through the history files.
fn morning_review(day: i64, run: usize) -> Vec<TraceRecord> {
    let mut records = Vec::new();
    let mut t = TRACE_EPOCH.add_secs(day * DAY + 9 * HOUR);
    for hour_file in 0..60u64 {
        t = t.add_secs(20); // a "movie" of the results
        records.push(TraceRecord::read(
            Endpoint::MssDisk,
            t,
            8_000_000,
            format!("/ccm/run{run:02}/hist{hour_file:03}"),
            100 + run as u32,
        ));
    }
    records
}

/// Mid-week, the scientist pulls last year's run back for comparison:
/// the dataset's cartridges are on the shelf and in the silo.
fn retrospective(day: i64) -> Vec<TraceRecord> {
    let mut records = Vec::new();
    let mut t = TRACE_EPOCH.add_secs(day * DAY + 10 * HOUR);
    for part in 0..8u64 {
        t = t.add_secs(320); // each file waits for an operator mount
        records.push(TraceRecord::read(
            Endpoint::MssTapeManual,
            t,
            47_000_000,
            format!("/ccm/archive90/season{part}"),
            100,
        ));
    }
    for part in 0..8u64 {
        t = t.add_secs(130); // silo robot is faster
        records.push(TraceRecord::read(
            Endpoint::MssTapeSilo,
            t,
            80_000_000,
            format!("/ccm/archive91/season{part}"),
            100,
        ));
    }
    records
}

fn mean_latency(records: &[TraceRecord], dir: Direction) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for r in records.iter().filter(|r| r.direction() == dir) {
        sum += r.startup_latency_s as f64;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn main() {
    // A week of campaign: four concurrent model runs, nightly writes,
    // morning reviews.
    let mut records = Vec::new();
    for day in 0..7 {
        for run in 0..4 {
            records.extend(nightly_run(day, run));
            records.extend(morning_review(day + 1, run));
        }
        if day == 3 {
            records.extend(retrospective(day));
        }
    }
    records.sort_by_key(|r| r.start);
    println!(
        "campaign: {} requests over a week (4 runs x 7 nights)",
        records.len()
    );

    let sim = MssSimulator::new(SimConfig::default());
    let base = sim.run(records.clone());
    println!(
        "\nas-is         : reads wait {:5.1}s, writes wait {:5.1}s (mean to first byte)",
        mean_latency(&base.records, Direction::Read),
        mean_latency(&base.records, Direction::Write),
    );

    // §6: write lazily at night, keep daytime devices free for readers.
    let deferred = writeback::defer_writes(&records);
    let lazy = sim.run(deferred);
    println!(
        "write-behind  : reads wait {:5.1}s (perceived write wait ~0: the MSS\n\
         \x20               acknowledges writes and flushes during the night window)",
        mean_latency(&lazy.records, Direction::Read),
    );

    // Where does read time go? Mostly tape mounts: the silo mounts for
    // every fresh cartridge while disk reads fly.
    let m = &base.metrics;
    println!("\nlatency by device (reads, as-is):");
    for device in DeviceClass::ALL {
        let h = m.latency_of(Direction::Read, device);
        if h.count() > 0 {
            println!(
                "  {:14} mean {:6.1}s  p90 {:6.1}s  ({} requests)",
                device.label(),
                h.mean(),
                h.quantile(0.9),
                h.count()
            );
        }
    }
    println!(
        "\nThe asymmetry is the paper's point: the scientist waits for every\n\
         read, while nobody waits for a tape write — so the MSS should be\n\
         \"optimized to make read access to files faster at the cost of\n\
         requiring more work for writes\" (§6)."
    );
}
