//! Quickstart: generate a small NCAR-like trace, run the full study, and
//! print the headline findings of the paper.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fmig_core::{Study, StudyConfig};
use fmig_trace::{DeviceClass, Direction};

fn main() {
    // A study at 1% of NCAR's two-year volume: ~35k requests, ~9k files.
    let config = StudyConfig::at_scale(0.01);
    let output = Study::new(config).run();

    let stats = &output.analysis.stats;
    println!(
        "trace: {} raw references over 731 days",
        stats.raw_references
    );
    println!(
        "reads : {} ({:.0}% of references, {:.0}% of bytes)",
        stats.reads.total.references,
        stats.read_reference_share() * 100.0,
        stats.read_byte_share() * 100.0,
    );
    println!(
        "writes: {} (the paper's 2:1 read/write ratio)",
        stats.writes.total.references
    );
    println!(
        "errors: {:.2}% of requests (dominated by file-not-found)",
        stats.error_fraction() * 100.0
    );

    // The paper's central design observation: humans wait for reads,
    // machines wait for writes.
    let hourly = &output.analysis.hourly;
    println!(
        "\nperiodicity: read rate peak/trough over the day = {:.1}x, writes = {:.1}x",
        hourly.peak_to_trough(Direction::Read),
        hourly.peak_to_trough(Direction::Write),
    );

    // Per-file behaviour drives migration policy.
    let files = &output.analysis.files;
    println!(
        "\nfiles: {} referenced; {:.0}% never read, {:.0}% written once and never read",
        files.file_count(),
        files.never_read() * 100.0,
        files.write_once_never_read() * 100.0,
    );

    // Device latencies from the MSS simulation.
    let lat = &output.analysis.latency;
    println!("\nmean seconds to first byte (simulated MSS):");
    for device in DeviceClass::ALL {
        println!("  {:14} {:7.1}", device.label(), lat.device_mean(device));
    }
    println!(
        "\n(run `cargo run --release -p fmig-bench --bin repro -- all` for every\n\
         table and figure with paper-vs-measured comparisons)"
    );
}
