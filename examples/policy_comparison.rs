//! Rerun the Smith/Lawrie migration-policy comparison on an NCAR-like
//! trace (§2.3 / §6-a of the paper).
//!
//! Generates a synthetic two-year trace, then drives a staging-disk
//! cache with each classic policy — STP (several exponents), LRU, FIFO,
//! size-ordered, SAAC, random, and Belady's clairvoyant bound — and
//! prints miss ratios plus the paper's person-minutes cost metric.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use fmig_migrate::eval::{capacity_sweep, evaluate_policies, EvalConfig};
use fmig_migrate::policy::{standard_suite, Belady, MigrationPolicy, Stp};
use fmig_workload::{Workload, WorkloadConfig};

fn main() {
    let workload = Workload::generate(&WorkloadConfig {
        scale: 0.02,
        seed: 1993,
        ..WorkloadConfig::default()
    });
    let records: Vec<_> = workload.records().collect();
    let total_bytes: u64 = workload.files().iter().map(|f| f.size).sum();
    println!(
        "trace: {} requests, {} files, {:.1} GB referenced",
        records.len(),
        workload.files().len(),
        total_bytes as f64 / 1e9
    );

    // Smith's operating point: a disk holding ~1.5% of the store.
    let capacity = (total_bytes as f64 * 0.015) as u64;
    println!(
        "staging disk: {:.2} GB (1.5% of the store)\n",
        capacity as f64 / 1e9
    );

    let mut suite = standard_suite();
    suite.push(Box::new(Belady));
    let config = EvalConfig::with_capacity(capacity);
    let outcomes = evaluate_policies(&records, &suite, &config);

    println!(
        "{:<18} {:>10} {:>10} {:>14}",
        "policy", "miss%", "byte-miss%", "person-min/day"
    );
    let mut ranked = outcomes.clone();
    ranked.sort_by(|a, b| a.miss_ratio.partial_cmp(&b.miss_ratio).expect("finite"));
    for o in &ranked {
        println!(
            "{:<18} {:>9.2}% {:>9.2}% {:>14.1}",
            o.name,
            o.miss_ratio * 100.0,
            o.byte_miss_ratio * 100.0,
            o.person_minutes_per_day
        );
    }

    // The paper's predecessors found STP best "though only by a slim
    // margin" — show the margin explicitly.
    let stp = outcomes
        .iter()
        .find(|o| o.name == "STP(1.4)")
        .expect("STP in suite");
    let best_online = ranked
        .iter()
        .find(|o| o.name != "Belady (offline)")
        .expect("online policies exist");
    println!(
        "\nSTP(1.4) vs best online ({}): {:.2}% vs {:.2}% misses",
        best_online.name,
        stp.miss_ratio * 100.0,
        best_online.miss_ratio * 100.0
    );

    // Miss ratio versus staging-disk size for the classic STP.
    println!("\nSTP(1.4) capacity sweep:");
    let caps: Vec<u64> = [0.005, 0.015, 0.05, 0.15]
        .iter()
        .map(|f| (total_bytes as f64 * f) as u64)
        .collect();
    let stp_policy = Stp::classic();
    let sweep = capacity_sweep(
        &records,
        &stp_policy as &dyn MigrationPolicy,
        &caps,
        &config,
    );
    for (cap, miss) in sweep {
        println!(
            "  {:6.2} GB ({:4.1}% of store)  miss {:5.2}%",
            cap as f64 / 1e9,
            cap as f64 / total_bytes as f64 * 100.0,
            miss * 100.0
        );
    }
}
